"""Unit tests for the overload-control toolkit (core/overload.py)."""

import pytest

from repro.core.overload import (
    Admission,
    AdmissionVerdict,
    BreakerState,
    CircuitBreaker,
    OverloadError,
    OverloadGuard,
    OverloadRejected,
    RetryBudget,
)
from repro.obs import Telemetry


class TestOverloadGuard:
    def test_empty_queue_admits_with_zero_delay(self):
        guard = OverloadGuard(0.01)
        admission = guard.offer(0.0)
        assert admission.admitted
        assert admission.queue_delay_s == 0.0
        assert admission.finish_s == pytest.approx(0.01)

    def test_backlog_is_the_queue_delay(self):
        guard = OverloadGuard(0.01, codel_target_s=None)
        first = guard.offer(0.0)
        second = guard.offer(0.0)
        assert second.queue_delay_s == pytest.approx(0.01)
        assert second.finish_s == pytest.approx(0.02)
        assert first.finish_s == pytest.approx(0.01)

    def test_backlog_drains_as_time_advances(self):
        guard = OverloadGuard(0.01, codel_target_s=None)
        for _ in range(5):
            guard.offer(0.0)
        assert guard.queue_delay_s(0.0) == pytest.approx(0.05)
        assert guard.queue_delay_s(0.03) == pytest.approx(0.02)
        assert guard.queue_delay_s(0.05) == 0.0
        assert guard.queue_depth(0.0) == 5
        assert guard.queue_depth(0.031) == 2
        assert guard.queue_depth(1.0) == 0

    def test_bounded_queue_rejects_overflow(self):
        guard = OverloadGuard(0.01, queue_capacity=3, codel_target_s=None)
        verdicts = [guard.offer(0.0).verdict for _ in range(5)]
        assert verdicts == [AdmissionVerdict.ADMITTED] * 3 + [
            AdmissionVerdict.REJECTED_QUEUE_FULL,
        ] * 2
        assert guard.stats.admitted == 3
        assert guard.stats.rejected_queue_full == 2
        assert guard.stats.offered == 5

    def test_deadline_admission_rejects_unmeetable_work(self):
        guard = OverloadGuard(0.01, codel_target_s=None)
        guard.offer(0.0)  # backlog now 10 ms
        late = guard.offer(0.0, deadline_s=0.015)
        assert late.verdict is AdmissionVerdict.REJECTED_DEADLINE
        # A deadline that covers queue + service is admitted.
        ok = guard.offer(0.0, deadline_s=0.020)
        assert ok.admitted

    def test_codel_sheds_after_sustained_delay(self):
        guard = OverloadGuard(
            0.010, codel_target_s=0.005, codel_interval_s=0.100,
            queue_capacity=None, deadline_admission=False,
        )
        # Build a backlog well above target, then keep offering: shedding
        # must only start once the delay has stayed above target for a
        # full interval.
        for _ in range(20):
            assert guard.offer(0.0).admitted
        early = guard.offer(0.05)       # above target, interval not elapsed
        assert early.admitted
        shed = guard.offer(0.15)        # above target for >= one interval
        assert shed.verdict is AdmissionVerdict.SHED
        assert guard.shed_by_priority == {1: 1}

    def test_codel_spares_critical_priority(self):
        guard = OverloadGuard(
            0.010, codel_target_s=0.005, codel_interval_s=0.100,
            queue_capacity=None, deadline_admission=False,
            critical_priority=0,
        )
        for _ in range(30):
            guard.offer(0.0)
        assert guard.offer(0.15, priority=1).verdict is AdmissionVerdict.SHED
        assert guard.offer(0.15, priority=0).admitted

    def test_codel_resets_when_delay_sinks_under_target(self):
        guard = OverloadGuard(
            0.010, codel_target_s=0.005, codel_interval_s=0.100,
            queue_capacity=None, deadline_admission=False,
        )
        for _ in range(20):
            guard.offer(0.0)
        assert guard.offer(0.15).verdict is AdmissionVerdict.SHED
        # Queue fully drained: delay under target resets the CoDel clock.
        assert guard.offer(0.5).admitted
        assert guard.offer(0.5).admitted

    def test_naive_guard_admits_everything(self):
        guard = OverloadGuard.naive(0.01)
        verdicts = {guard.offer(0.0).verdict for _ in range(500)}
        assert verdicts == {AdmissionVerdict.ADMITTED}
        assert guard.stats.admitted == 500

    def test_admit_raises_on_refusal(self):
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.admit(0.0)
        with pytest.raises(OverloadRejected) as excinfo:
            guard.admit(0.0)
        err = excinfo.value
        assert err.verdict is AdmissionVerdict.REJECTED_QUEUE_FULL
        assert err.transient and err.cost_s == 0.0

    def test_overloaded_tracks_codel_target(self):
        guard = OverloadGuard(0.01, codel_target_s=0.005)
        assert not guard.overloaded(0.0)
        guard.offer(0.0)
        guard.offer(0.0)
        assert guard.overloaded(0.0)       # 10 ms backlog > 5 ms target
        assert not guard.overloaded(0.02)  # drained

    def test_naive_guard_reports_overload_past_ten_service_times(self):
        guard = OverloadGuard.naive(0.01)
        for _ in range(11):
            guard.offer(0.0)
        assert guard.overloaded(0.0)
        assert not guard.overloaded(0.2)

    def test_reset_clears_queue_and_counters(self):
        guard = OverloadGuard(0.01, queue_capacity=2, codel_target_s=None)
        for _ in range(4):
            guard.offer(0.0)
        guard.reset()
        assert guard.queue_depth(0.0) == 0
        assert guard.stats.offered == 0
        assert guard.offer(0.0).admitted

    def test_invalid_parameters_raise(self):
        with pytest.raises(OverloadError):
            OverloadGuard(0.0)
        with pytest.raises(OverloadError):
            OverloadGuard(0.01, queue_capacity=0)
        with pytest.raises(OverloadError):
            OverloadGuard(0.01, codel_target_s=-1.0)
        with pytest.raises(OverloadError):
            OverloadGuard(0.01, codel_interval_s=0.0)

    def test_admission_latency_property(self):
        admission = Admission(
            AdmissionVerdict.ADMITTED, queue_delay_s=0.03,
            service_time_s=0.01, finish_s=0.04,
        )
        assert admission.latency_s == pytest.approx(0.04)

    def test_verdicts_flow_into_metrics(self):
        tel = Telemetry()
        guard = OverloadGuard(
            0.01, name="ps", queue_capacity=1, codel_target_s=None,
            telemetry=tel,
        )
        guard.offer(0.0)
        guard.offer(0.0)
        text = tel.metrics.prometheus_text()
        assert 'overload_admitted_total{service="ps"} 1' in text
        assert 'overload_rejected_queue_full_total{service="ps"} 1' in text
        assert "overload_queue_depth" in text
        assert "overload_queue_delay_seconds" in text


class TestRetryBudget:
    def test_starts_full_and_spends_one_token_per_retry(self):
        budget = RetryBudget(ratio=0.1, capacity=3.0)
        assert budget.try_retry()
        assert budget.try_retry()
        assert budget.try_retry()
        assert not budget.try_retry()
        assert budget.spent == 3
        assert budget.exhausted == 1

    def test_fresh_requests_earn_tokens(self):
        budget = RetryBudget(ratio=0.5, capacity=2.0)
        budget.try_retry()
        budget.try_retry()
        assert not budget.try_retry()
        budget.on_request()
        budget.on_request()
        assert budget.try_retry()

    def test_tokens_cap_at_capacity(self):
        budget = RetryBudget(ratio=1.0, capacity=2.0)
        for _ in range(10):
            budget.on_request()
        assert budget.tokens == 2.0

    def test_steady_state_retry_fraction_is_bounded(self):
        # 1000 requests, each "failing": only ~ratio of them may retry
        # once the initial burst capacity is gone.
        budget = RetryBudget(ratio=0.1, capacity=10.0)
        retries = 0
        for _ in range(1000):
            budget.on_request()
            if budget.try_retry():
                retries += 1
        assert retries <= 0.1 * 1000 + budget.capacity

    def test_exhaustion_flows_into_metrics(self):
        tel = Telemetry()
        budget = RetryBudget(ratio=0.0, capacity=1.0, name="pan",
                             telemetry=tel)
        budget.try_retry()
        budget.try_retry()
        text = tel.metrics.prometheus_text()
        assert 'overload_retries_spent_total{client="pan"} 1' in text
        assert 'overload_retry_budget_exhausted_total{client="pan"} 1' in text

    def test_invalid_parameters_raise(self):
        with pytest.raises(OverloadError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(OverloadError):
            RetryBudget(capacity=0.0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        for t in (0.0, 0.1, 0.2):
            assert breaker.allow(t)
            breaker.record_failure(t)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(0.3)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_lets_exactly_one_probe_through(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(0.5)
        assert breaker.allow(1.1)          # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(1.2)      # probe outstanding: refused
        breaker.record_success(1.3)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(1.4)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.1)
        breaker.record_failure(1.2)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(2.0)      # timeout restarts from re-open
        assert breaker.allow(2.3)

    def test_open_intervals_reconstruction(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.5)
        breaker.allow(1.6)
        breaker.record_success(1.7)
        breaker.record_failure(3.0)
        assert breaker.open_intervals == [(0.5, 1.6), (3.0, None)]

    def test_transitions_flow_into_metrics(self):
        tel = Telemetry()
        breaker = CircuitBreaker(name="lookup", failure_threshold=1,
                                 reset_timeout_s=1.0, telemetry=tel)
        breaker.record_failure(0.0)
        breaker.allow(1.5)
        breaker.record_success(1.6)
        text = tel.metrics.prometheus_text()
        assert ('overload_breaker_transitions_total'
                '{breaker="lookup",to="open"} 1') in text
        assert ('overload_breaker_transitions_total'
                '{breaker="lookup",to="half-open"} 1') in text
        assert ('overload_breaker_transitions_total'
                '{breaker="lookup",to="closed"} 1') in text

    def test_invalid_parameters_raise(self):
        with pytest.raises(OverloadError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(OverloadError):
            CircuitBreaker(reset_timeout_s=0.0)
