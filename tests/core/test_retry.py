"""Tests for the shared retry policy (backoff, budgets, determinism)."""

import pytest

from repro.core.retry import RetryError, RetryPolicy, RetrySchedule


class TransientFailure(Exception):
    def __init__(self, message="boom", cost_s=0.0):
        super().__init__(message)
        self.cost_s = cost_s


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=-1.0)

    def test_clamp_cost(self):
        assert RetryPolicy().clamp_cost(99.0) == 99.0
        assert RetryPolicy(attempt_timeout_s=0.5).clamp_cost(99.0) == 0.5
        assert RetryPolicy(attempt_timeout_s=0.5).clamp_cost(0.1) == 0.1


class TestRetrySchedule:
    def test_backoffs_within_jitter_bounds(self):
        policy = RetryPolicy(max_attempts=50, base_delay_s=0.01,
                             max_delay_s=0.2)
        schedule = policy.schedule()
        prev = policy.base_delay_s
        while True:
            backoff = schedule.next_backoff_s()
            if backoff is None:
                break
            assert policy.base_delay_s <= backoff <= policy.max_delay_s
            assert backoff <= max(3 * prev, policy.base_delay_s)
            prev = backoff

    def test_same_seed_same_sequence(self):
        policy = RetryPolicy(max_attempts=10, seed=123)
        first = [policy.schedule().next_backoff_s() for _ in range(1)]
        a = policy.schedule()
        b = policy.schedule()
        seq_a = [a.next_backoff_s() for _ in range(9)]
        seq_b = [b.next_backoff_s() for _ in range(9)]
        assert seq_a == seq_b
        assert first[0] == seq_a[0]

    def test_different_seed_different_sequence(self):
        seq = lambda s: [RetryPolicy(max_attempts=10, seed=s).schedule()
                         .next_backoff_s() for _ in range(3)]
        assert seq(1) != seq(2)

    def test_max_attempts_exhausts(self):
        schedule = RetryPolicy(max_attempts=3).schedule()
        assert schedule.next_backoff_s() is not None
        assert schedule.next_backoff_s() is not None
        assert schedule.next_backoff_s() is None
        assert schedule.attempts_started == 3

    def test_single_attempt_never_backs_off(self):
        assert RetryPolicy(max_attempts=1).schedule().next_backoff_s() is None

    def test_deadline_stops_schedule(self):
        policy = RetryPolicy(max_attempts=100, base_delay_s=0.05,
                             max_delay_s=0.05, deadline_s=0.12)
        schedule = policy.schedule()
        waits = []
        while True:
            backoff = schedule.next_backoff_s()
            if backoff is None:
                break
            waits.append(backoff)
        # Two 50ms waits fit in 120ms; a third would overshoot.
        assert len(waits) == 2
        assert schedule.backoff_total_s <= policy.deadline_s

    def test_backoff_on_exact_deadline_boundary_is_refused(self):
        # Regression: base == max pins the jitter, so every draw is
        # exactly 0.04 s; after two waits (0.08 s) the third lands the
        # total exactly on the 0.12 s deadline.  The old ``>`` comparison
        # scheduled that attempt with zero remaining budget — it must be
        # refused instead.
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.04,
                             max_delay_s=0.04, deadline_s=0.12)
        schedule = policy.schedule()
        assert schedule.next_backoff_s() == pytest.approx(0.04)
        assert schedule.next_backoff_s() == pytest.approx(0.04)
        assert schedule.next_backoff_s() is None
        assert schedule.backoff_total_s < policy.deadline_s

    def test_charged_costs_consume_deadline(self):
        policy = RetryPolicy(max_attempts=100, base_delay_s=0.05,
                             max_delay_s=0.05, deadline_s=0.12)
        schedule = policy.schedule()
        schedule.charge(0.10)
        assert schedule.next_backoff_s() is None

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().schedule().charge(-1.0)


class TestRetryRun:
    def test_success_first_try(self):
        outcome = RetryPolicy().run(lambda: 42)
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert outcome.backoff_s == 0.0
        assert outcome.failures == ()

    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFailure(cost_s=0.01)
            return "ok"

        outcome = RetryPolicy(max_attempts=5).run(flaky)
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert len(outcome.failures) == 2
        assert outcome.backoff_s > 0.0
        assert outcome.elapsed_s == pytest.approx(0.02)

    def test_exhaustion_raises_retry_error(self):
        def always_fail():
            raise TransientFailure("nope")

        with pytest.raises(RetryError) as excinfo:
            RetryPolicy(max_attempts=3).run(always_fail)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last, TransientFailure)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fail_hard():
            calls.append(1)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).run(
                fail_hard,
                retryable=lambda exc: not isinstance(exc, ValueError),
            )
        assert len(calls) == 1

    def test_attempt_timeout_clamps_charged_cost(self):
        def expensive_failure():
            raise TransientFailure(cost_s=100.0)

        policy = RetryPolicy(max_attempts=3, attempt_timeout_s=0.01,
                             deadline_s=10.0)
        with pytest.raises(RetryError) as excinfo:
            policy.run(expensive_failure)
        # All 3 attempts ran: clamped costs (3 x 10ms) fit the deadline,
        # where unclamped ones (100s) would have aborted after the first.
        assert excinfo.value.attempts == 3
