"""The chaos experiment: seeded determinism and the CI resilience bounds.

These are the assertions the chaos-smoke CI job relies on: the fixed-seed
run must be byte-identical across invocations, and the resilience numbers
must stay inside tight bounds (bootstrap always recovers via fallback,
recovery after a cut stays within the retry cadence).
"""

import pytest

from repro.experiments import chaos_resilience


@pytest.fixture(scope="module")
def result():
    return chaos_resilience.run(fast=True, seed=11)


class TestDeterminism:
    def test_two_runs_byte_identical(self, result):
        again = chaos_resilience.run(fast=True, seed=11)
        assert again.report() == result.report()

    def test_fault_stream_digest_in_details(self, result):
        assert "digest" in result.details
        assert "seed 11" in result.details

    def test_different_seed_different_stream(self, result):
        other = chaos_resilience.run(fast=True, seed=12)
        own_digest = result.details.split("digest ")[1].split()[0]
        other_digest = other.details.split("digest ")[1].split()[0]
        assert own_digest != other_digest


def _measured(result, metric):
    for comparison in result.comparisons:
        if comparison.metric == metric:
            return comparison.measured
    raise AssertionError(f"metric {metric!r} missing")


class TestResilienceBounds:
    def test_bootstrap_survives_hard_outage(self, result):
        measured = _measured(result, "bootstrap w/ server outage")
        assert measured.startswith("100% success")
        amplification = float(measured.split("amplification ")[1].rstrip("x"))
        # Fallback costs exactly one wasted attempt on the dead primary.
        assert amplification <= 3.0

    def test_bootstrap_survives_heavy_refusals(self, result):
        measured = _measured(result, "bootstrap @ 50% refusals")
        success = float(measured.split("%")[0])
        assert success >= 95.0

    def test_recovery_bounded_by_retry_cadence(self, result):
        p50 = float(_measured(result, "p50 recovery after cut").split()[0])
        p99 = float(_measured(result, "p99 recovery after cut").split()[0])
        assert p50 <= 100.0   # ms; §4.7 failover is instant-to-one-retry
        assert p99 <= 500.0   # ms; a few lost 50ms retry windows at most
        assert p50 <= p99

    def test_sweep_amplification_monotone(self, result):
        line = result.details.splitlines()[0]
        amps = [float(part.split("amp=")[1].rstrip("x"))
                for part in line.split()[2:]]
        assert amps == sorted(amps)  # more refusals, more retries
        assert amps[0] == pytest.approx(1.0)  # no faults, no amplification
