"""The crucible experiment: all-green campaign slice + seeded determinism.

The full fast campaign (20 schedules) runs in the `crucible` experiment
itself; this test gates a 4-schedule slice of the same seed corpus on
both campaign topologies, so CI catches an invariant violation or a
determinism break without paying the full campaign twice.
"""

import pytest

from repro.experiments.crucible import campaign_digest, run_shrink_demo
from repro.netsim.crucible import generate_schedule, run_schedule

SEED = 0xD57  # the campaign's seed base


@pytest.fixture(scope="module")
def slice_results():
    results = []
    for topology in ("fig1", "rand64"):
        for index in range(2):
            schedule = generate_schedule(
                seed=SEED + index, topology=topology, n_faults=4
            )
            results.append(run_schedule(schedule))
    return results


class TestCampaignSlice:
    def test_all_green(self, slice_results):
        for result in slice_results:
            assert result.ok, (
                result.schedule.topology,
                result.schedule.seed,
                [str(v) for v in result.violations],
            )

    def test_every_run_checked_and_faulted(self, slice_results):
        for result in slice_results:
            assert result.checks_run > 0
            assert result.fault_events > 0

    def test_digest_stable_across_replay(self, slice_results):
        # Replay the cheap topology's slice and fold both into the same
        # campaign digest machinery the experiment reports.
        rand64 = [
            r for r in slice_results if r.schedule.topology == "rand64"
        ]
        replayed = [run_schedule(r.schedule) for r in rand64]
        assert campaign_digest(rand64) == campaign_digest(replayed)


class TestShrinkDemo:
    def test_bug_caught_shrunk_and_replayed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", None)  # re-read TMPDIR
        demo = run_shrink_demo()
        assert not demo["caught"].ok
        assert "codel-spares-critical" in demo["caught"].violated_names()
        assert demo["shrink"].shrunk_faults <= 5
        assert demo["replay_exact"]
