"""End-to-end tests of the experiment suite: every figure/table runs and
reproduces the paper's qualitative shape."""

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_experiment,
)


@pytest.fixture(scope="module", autouse=True)
def warm_caches():
    """Build the world and the fast campaign once for the whole module."""
    from repro.experiments.common import get_campaign, get_world

    get_world()
    get_campaign(fast=True)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig3", "fig4", "sec52", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig10c", "sec56",
            "dispatcher", "chaos", "control_chaos", "revocation_storm",
            "overload", "crucible", "adversary", "obs_slice",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_each_experiment_runs_and_reports(self, exp_id):
        result = run_experiment(exp_id, fast=True)
        assert isinstance(result, ExperimentResult)
        assert result.exp_id == exp_id
        assert result.comparisons
        report = result.report()
        assert exp_id in report
        assert "paper:" in report


def _measured(result: ExperimentResult, metric: str) -> str:
    for comparison in result.comparisons:
        if comparison.metric == metric:
            return comparison.measured
    raise AssertionError(f"metric {metric!r} missing from {result.exp_id}")


class TestHeadlineShapes:
    def test_fig4_bootstrap_under_150ms(self):
        result = run_experiment("fig4")
        measured = _measured(result, "total median")
        worst = float(measured.split()[-2])
        assert worst < 150.0

    def test_fig5_scion_wins_median_and_tail(self):
        from repro.experiments.common import get_campaign
        from repro.sciera.analysis import fig5_latency_cdf

        stats = fig5_latency_cdf(get_campaign(fast=True))
        assert stats.median_reduction_pct > 2.0    # paper: 6.9%
        assert stats.p90_reduction_pct > 10.0      # paper: 23.7%

    def test_fig6_ratio_distribution(self):
        from repro.experiments.common import get_campaign
        from repro.sciera.analysis import fig6_ratio_cdf

        stats = fig6_ratio_cdf(get_campaign(fast=True))
        assert 0.25 < stats.frac_below_1 < 0.60    # paper: ~38%
        assert stats.frac_below_1_25 > 0.70        # paper: ~80%
        assert stats.outlier_pairs                 # ring/BRIDGES outliers

    def test_fig8_path_count_extremes(self):
        from repro.experiments.common import get_campaign
        from repro.sciera.analysis import fig8_max_active_paths
        from repro.sciera.topology_data import FIG8_ASES

        matrix = fig8_max_active_paths(get_campaign(fast=True), FIG8_ASES)
        values = matrix.values()
        assert min(values) >= 2                    # paper: at least 2
        assert max(values) > 100                   # paper: 113

    def test_fig9_cable_cut_signature(self):
        from repro.experiments.common import get_campaign
        from repro.sciera.analysis import fig9_median_deviation
        from repro.sciera.topology_data import FIG8_ASES

        matrix = fig9_median_deviation(get_campaign(fast=True), FIG8_ASES)
        dj_sg = matrix.matrix[("71-2:0:3b", "71-2:0:3d")]
        assert dj_sg >= 10                         # paper: 16
        zeros = sum(1 for v in matrix.values() if v == 0)
        assert zeros >= len(matrix.values()) * 0.3  # most pairs undisturbed

    def test_fig10c_multipath_vs_singlepath(self):
        result = run_experiment("fig10c")
        multi = float(_measured(result, "multipath @ 20% links removed").rstrip("%"))
        single = float(_measured(result, "single path @ 20% links removed").rstrip("%"))
        assert multi > single + 10
        assert _measured(result, "multipath advantage") == "holds"

    def test_sec52_small_diffs(self):
        result = run_experiment("sec52")
        bat = _measured(result, "bat (cURL-like web client)")
        assert int(bat.split()[0]) < 20            # paper: < 20 LoC

    def test_dispatcher_ablation_ordering(self):
        result = run_experiment("dispatcher")
        assert "end-host limited: True" in _measured(result, "dispatcher wall")

    def test_table2_matches_exactly(self):
        result = run_experiment("table2")
        assert _measured(result, "cell-exact match") == "all match"

    def test_sec56_exact(self):
        result = run_experiment("sec56")
        for comparison in result.comparisons[:10]:
            assert comparison.paper == comparison.measured


class TestRunnerCli:
    def test_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SCIERA PoPs" in out

    def test_unknown_id_errors(self):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["figZZ"])
