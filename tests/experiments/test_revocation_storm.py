"""revocation_storm: seeded determinism and the strict-improvement bounds.

These are the assertions the revocation-smoke CI job relies on: the
fixed-seed run must be byte-identical across invocations, and the pipeline
must beat per-host rediscovery *strictly* on every reported metric.
"""

import pytest

from repro.experiments import revocation_storm
from repro.experiments.registry import EXPERIMENTS


@pytest.fixture(scope="module")
def result():
    return revocation_storm.run(fast=True, seed=23)


def _pair(result, metric):
    """(baseline, pipeline) numbers out of a "X ... -> Y ..." comparison."""
    for comparison in result.comparisons:
        if comparison.metric == metric:
            before, after = comparison.measured.split(" -> ")
            return float(before.split()[0]), float(after.split()[0])
    raise AssertionError(f"metric {metric!r} missing")


class TestDeterminism:
    def test_registered(self):
        assert "revocation_storm" in EXPERIMENTS

    def test_two_runs_byte_identical(self, result):
        again = revocation_storm.run(fast=True, seed=23)
        assert again.report() == result.report()

    def test_fault_stream_digest_in_details(self, result):
        assert "digest" in result.details
        assert "seed 23" in result.details

    def test_different_seed_different_stream(self, result):
        other = revocation_storm.run(fast=True, seed=24)
        own = result.details.split("digest ")[1].split()[0]
        theirs = other.details.split("digest ")[1].split()[0]
        assert own != theirs


class TestPipelineStrictlyBetter:
    def test_strictly_fewer_stale_paths_served(self, result):
        baseline, pipeline = _pair(result, "stale paths served")
        assert pipeline < baseline

    def test_strictly_lower_p99_failover(self, result):
        baseline, pipeline = _pair(result, "p99 time-to-failover")
        assert pipeline < baseline

    def test_strictly_faster_reconvergence(self, result):
        baseline, pipeline = _pair(result, "time-to-reconverge")
        assert pipeline < baseline

    def test_pipeline_quarantines_segments(self, result):
        assert "quarantine: pipeline held" in result.details
        held = float(
            result.details.split("pipeline held ")[1].split()[0]
        )
        assert held > 0
