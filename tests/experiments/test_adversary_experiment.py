"""The adversary experiment: the hardened/naive contrast that is the
whole point of the red-team campaign, gated piecewise so CI pays one
campaign per arm rather than the experiment twice.
"""

import pytest

from repro.experiments.adversary import (
    GOODPUT_FLOOR,
    arm_digest,
    build_arm,
    run_adversarial_crucible,
    run_attack_campaign,
)


@pytest.fixture(scope="module")
def hardened():
    arm = build_arm(True)
    outcomes = run_attack_campaign(arm)
    return arm, outcomes


@pytest.fixture(scope="module")
def naive():
    arm = build_arm(False)
    outcomes = run_attack_campaign(arm)
    return arm, outcomes


class TestHardenedArm:
    def test_zero_successful_attacks(self, hardened):
        arm, outcomes = hardened
        assert outcomes
        assert not [o for o in outcomes if o.succeeded]

    def test_every_attack_detected(self, hardened):
        arm, outcomes = hardened
        assert all(o.detected for o in outcomes)

    def test_goodput_retained_under_attack(self, hardened):
        arm, _ = hardened
        assert arm.baseline_goodput > 0
        assert (
            arm.attacked_goodput
            >= GOODPUT_FLOOR * arm.baseline_goodput
        )

    def test_honest_critical_traffic_admitted(self, hardened):
        arm, _ = hardened
        assert arm.honest_admit_fraction >= GOODPUT_FLOOR

    def test_attacks_attributed(self, hardened):
        arm, _ = hardened
        adversarial = [
            e for e in arm.telemetry.events.events
            if e.source == "adversary"
        ]
        assert len(adversarial) == len(arm.adversary.outcomes)


class TestNaiveArm:
    def test_same_stream_compromises_naive_stack(self, hardened, naive):
        _, hardened_outcomes = hardened
        arm, outcomes = naive
        assert len(outcomes) == len(hardened_outcomes)
        assert sum(1 for o in outcomes if o.succeeded) > 0

    def test_goodput_collapses(self, hardened, naive):
        arm, _ = naive
        # Accepted forged revocations quarantine the core interfaces the
        # honest paths cross.
        assert arm.attacked_goodput < arm.baseline_goodput


class TestDeterminism:
    def test_arm_digest_stable(self, hardened):
        arm, _ = hardened
        rebuilt = build_arm(True)
        run_attack_campaign(rebuilt)
        assert arm_digest(rebuilt) == arm_digest(arm)


class TestAdversarialCrucibleSlice:
    def test_slice_is_all_green(self):
        results = run_adversarial_crucible(fast=True)
        for result in results:
            assert result.ok, (
                result.schedule.seed, result.violated_names()
            )
