"""Test package."""
