"""The overload experiment: acceptance gates and seeded reproducibility."""

import pytest

from repro.experiments.overload import (
    DEADLINE_S,
    SWEEP_MULTIPLES,
    run,
    run_storms,
    telemetry_snapshot,
)
from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def storms():
    return run_storms(fast=True)


class TestAcceptance:
    def test_protected_goodput_at_4x_offered_load(self, storms):
        index = SWEEP_MULTIPLES.index(4.0)
        naive = storms["sweep"]["naive"][index]["goodput_rps"]
        protected = storms["sweep"]["protected"][index]["goodput_rps"]
        assert protected >= 2 * max(naive, 1.0)

    def test_protected_recovers_to_baseline_after_surge(self, storms):
        protected = storms["protected"]
        assert protected.recovered_at_s is not None
        assert protected.recovered_at_s <= 2.0
        assert protected.post_surge_fraction >= 0.9

    def test_naive_stack_is_metastable(self, storms):
        naive = storms["naive"]
        # Goodput stays depressed after the surge ends, sustained by the
        # unbudgeted retries — the metastable signature.
        assert naive.recovered_at_s is None
        assert naive.post_surge_fraction <= 0.5
        assert naive.retries_sent > naive.offered  # retry amplification

    def test_admitted_p99_within_deadline_for_protected(self, storms):
        assert storms["protected"].p99_admitted_latency_s <= DEADLINE_S
        # The naive stack serves uselessly late instead of refusing.
        assert storms["naive"].p99_admitted_latency_s > DEADLINE_S

    def test_critical_priority_never_shed(self, storms):
        assert storms["protected"].shed_by_priority.get(0, 0) == 0
        assert storms["protected"].shed_by_priority.get(1, 0) > 0

    def test_partition_invariant_holds_under_storm(self, storms):
        for outcome in (storms["naive"], storms["protected"]):
            stats = outcome.stats
            assert (
                stats["admitted"] + stats["shed"]
                + stats["rejected_queue_full"] + stats["rejected_deadline"]
                == stats["offered"]
            )

    def test_health_reports_overloaded_mid_surge(self, storms):
        assert storms["protected"].health_status == "OVERLOADED"
        assert storms["protected"].overloaded_services
        assert storms["naive"].health_status == "OVERLOADED"

    def test_protected_stack_serves_stale_instead_of_retrying(self, storms):
        protected = storms["protected"]
        assert protected.stale_served > 0
        assert protected.retries_sent < protected.offered * 0.01
        assert protected.breaker_transitions > 0


class TestReproducibility:
    def test_same_seed_same_digest(self, storms):
        again = run_storms(fast=True)
        assert again["digest"] == storms["digest"]
        assert again["protected"].bins == storms["protected"].bins
        assert again["naive"].bins == storms["naive"].bins

    def test_different_seed_different_digest(self, storms):
        other = run_storms(fast=True, seed=18)
        assert other["digest"] != storms["digest"]


class TestReport:
    def test_run_produces_report_with_digest(self):
        result = run(fast=True)
        assert result.exp_id == "overload"
        assert len(result.comparisons) == 4
        assert "digest" in result.details
        assert "OVERLOADED" in result.details

    def test_registered_in_registry(self):
        result = run_experiment("overload", fast=True)
        assert result.exp_id == "overload"


class TestTelemetrySnapshot:
    def test_all_overload_decisions_visible_in_metrics(self):
        snap = telemetry_snapshot()
        prom = snap["prometheus"]
        for family in (
            "overload_admitted_total",
            "overload_shed_total",
            "overload_rejected_deadline_total",
            "overload_queue_depth",
            "overload_queue_delay_seconds",
            "overload_breaker_transitions_total",
            "overload_retries_spent_total",
            "overload_retry_budget_exhausted_total",
        ):
            assert family in prom, family
        assert snap["health_status"] == "OVERLOADED"
        assert snap["overloaded_services"]


class TestSloSnapshot:
    """The SLO burn-rate engine watching the naive arm (acceptance
    criterion: >= 1 burn-rate alert in the EventLog during the storm)."""

    @pytest.fixture(scope="class")
    def slo_snap(self):
        from repro.experiments.overload import slo_snapshot

        return slo_snapshot(seed=17)

    def test_burn_rate_alert_fires_during_naive_storm(self, slo_snap):
        assert len(slo_snap["alerts"]) >= 1
        alert = slo_snap["alerts"][0]
        assert alert.kind == "slo-burn-rate"
        assert alert.source == "slo"
        assert "lookup-latency" in alert.target

    def test_metastable_alert_never_clears(self, slo_snap):
        """The naive stack never recovers after the surge, and neither
        does the pager: no burn-clear events by the end of the run."""
        assert slo_snap["clears"] == []
        assert slo_snap["status"]["active"]

    def test_alert_stream_deterministic_across_runs(self, slo_snap):
        from repro.experiments.overload import slo_snapshot

        again = slo_snapshot(seed=17)

        def stream(snap):
            return [
                (e.time_s, e.kind, e.target, e.detail, e.severity)
                for e in snap["alerts"] + snap["clears"]
            ]

        assert stream(again) == stream(slo_snap)

    def test_slo_sampling_leaves_pinned_digest_unchanged(self, storms):
        """``slo_snapshot`` drives ``_run_storm`` with an engine attached;
        the pinned ``run_storms`` digest (which never does) must not move."""
        from repro.experiments.overload import slo_snapshot

        slo_snapshot(seed=17)
        again = run_storms(fast=True)
        assert again["digest"] == storms["digest"]
