"""The control-chaos experiment: seeded determinism and recovery bounds.

These are the assertions the control-chaos-smoke CI job relies on: the
fixed-seed run must be byte-identical across invocations, warm restart
must reconverge strictly faster than cold, and lookup availability must
be reported for both restart modes.
"""

import pytest

from repro.experiments import control_chaos


@pytest.fixture(scope="module")
def result():
    return control_chaos.run(fast=True, seed=23)


def _measured(result, metric):
    for comparison in result.comparisons:
        if comparison.metric == metric:
            return comparison.measured
    raise AssertionError(f"metric {metric!r} missing")


class TestDeterminism:
    def test_two_runs_byte_identical(self, result):
        again = control_chaos.run(fast=True, seed=23)
        assert again.report() == result.report()

    def test_fault_stream_digest_in_details(self, result):
        assert "digest" in result.details
        assert "seed 23" in result.details

    def test_different_seed_different_stream(self, result):
        other = control_chaos.run(fast=True, seed=24)
        own_digest = result.details.split("digest ")[1].split()[0]
        other_digest = other.details.split("digest ")[1].split()[0]
        assert own_digest != other_digest

    def test_supervisor_events_reach_fault_stream(self, result):
        line = result.details.splitlines()[0]
        assert "service-crash=2" in line
        assert "service-restart=2" in line
        assert "ca-outage" in line


class TestRecoveryBounds:
    def test_warm_strictly_faster_than_cold(self, result):
        cold = float(_measured(result, "reconverge (cold restart)").split()[0])
        warm = float(_measured(result, "reconverge (warm restart)").split()[0])
        assert warm < cold
        # Detection + backoff bound both modes; recovery itself differs.
        assert warm >= control_chaos.CHECK_INTERVAL_S

    def test_availability_reported_for_both_modes(self, result):
        cold = float(_measured(result, "lookup availability (cold)").split("%")[0])
        warm = float(_measured(result, "lookup availability (warm)").split("%")[0])
        assert 0.0 < cold < 100.0   # the outage must be visible
        assert warm >= cold         # warm restores state, never worse
        assert warm <= 100.0

    def test_renewal_storm_ends_healthy(self, result):
        measured = _measured(result, "renewal storm")
        assert "healthy=yes" in measured
        assert measured.startswith("5 renewals for 5 ASes")
        amplification = float(
            measured.split("amplification ")[1].split("x")[0]
        )
        # Retries during the CA outage cost extra attempts, but the burst
        # must stay bounded by the renewal policy's attempt budget.
        assert 1.0 < amplification <= 30.0
