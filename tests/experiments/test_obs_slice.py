"""The profiled chaos slice: artifacts on disk and acceptance rows."""

import json

import pytest

from repro.experiments.obs_slice import run, run_slice
from repro.obs import flight_digest


@pytest.fixture(scope="module")
def slice_data(tmp_path_factory):
    return run_slice(out_dir=tmp_path_factory.mktemp("obs-slice"))


class TestArtifacts:
    def test_flight_black_box_written_and_digest_valid(self, slice_data):
        artifact = json.loads(slice_data["paths"]["flight"].read_text())
        assert artifact["reason"] == "invariant-violation"
        assert flight_digest(artifact) == artifact["digest"]
        assert artifact["digest"] \
            == slice_data["instrumented"].flight_artifact["digest"]

    def test_folded_stacks_renderable(self, slice_data):
        for key in ("folded_calls", "folded_sim"):
            lines = slice_data["paths"][key].read_text().strip().split("\n")
            assert lines
            for line in lines:
                stack, count = line.rsplit(" ", 1)
                assert int(count) > 0
                assert ";" in stack

    def test_profile_table_names_dataplane_walk(self, slice_data):
        table = slice_data["paths"]["table"].read_text()
        assert "ScionDataplane.walk" in table

    def test_slo_alert_stream_written(self, slice_data):
        text = slice_data["paths"]["alerts"].read_text()
        assert "slo-burn-rate" in text
        assert slice_data["alert_count"] >= 1

    def test_instrumentation_is_pure_reader(self, slice_data):
        instrumented = slice_data["instrumented"]
        plain = slice_data["plain"]
        assert instrumented.fault_digest == plain.fault_digest
        assert instrumented.violated_names() == plain.violated_names()


class TestReport:
    def test_report_rows_all_green(self):
        result = run(fast=True)
        assert result.exp_id == "obs_slice"
        measured = {c.metric: c.measured for c in result.comparisons}
        assert measured["flight recorder dumps"].startswith("yes")
        assert measured["profiler sees the dataplane"].startswith("yes")
        assert measured["observability is a pure reader"].startswith("yes")
        assert not measured["SLO burn-rate alerts"].startswith("0 ")
