"""Integration: enrolling new ASes into the running SCIERA network.

This is the operation the whole paper is about scaling — "connecting
additional institutions". The tests enroll the institutions Appendix C
says are coming (UIUC, SURF, CERN, TUM, ...) and verify they become fully
reachable, authenticated participants.
"""

import pytest

from repro.core.orchestrator import Orchestrator
from repro.scion.addr import IA
from repro.scion.topology import TopologyError
from repro.sciera.build import build_sciera


@pytest.fixture(scope="module")
def world():
    return build_sciera(seed=51)


class TestEnrollment:
    def test_enroll_single_homed_institution(self, world):
        network = world.network
        surf = IA.parse("71-1103")  # SURF, via GEANT
        service = network.enroll_as(
            surf, [(IA.parse("71-20965"), 0.004)], name="SURF", region="EU",
        )
        assert service.certificate_healthy(network.timestamp)
        # Reachable from everywhere, in both directions.
        for other_text in ("71-225", "71-2:0:3b", "71-2:0:5c"):
            other = IA.parse(other_text)
            to_paths = network.paths(other, surf)
            from_paths = network.paths(surf, other)
            assert to_paths and from_paths
            assert network.probe(to_paths[0]).success
            assert network.probe(from_paths[0]).success

    def test_enroll_dual_homed_institution_gets_multipath(self, world):
        network = world.network
        uiuc = IA.parse("71-1224")
        network.enroll_as(
            uiuc,
            [(IA.parse("71-2:0:35"), 0.003), (IA.parse("71-2:0:3f"), 0.002)],
            name="UIUC", region="NA",
        )
        paths = network.paths(uiuc, IA.parse("71-20965"))
        origins = {meta.as_sequence[1] for meta in paths}
        # Both upstream providers are used.
        assert IA.parse("71-2:0:35") in origins
        assert IA.parse("71-2:0:3f") in origins
        assert len(paths) >= 2

    def test_existing_pairs_unaffected_by_enrollment(self, world):
        network = world.network
        before = {
            meta.fingerprint
            for meta in network.paths(IA.parse("71-225"), IA.parse("71-1916"))
        }
        network.enroll_as(
            IA.parse("71-3303"), [(IA.parse("71-20965"), 0.005)], name="TUM",
        )
        after = {
            meta.fingerprint
            for meta in network.paths(IA.parse("71-225"), IA.parse("71-1916"))
        }
        assert before <= after  # nothing lost by growing the network

    def test_enrolled_as_is_orchestratable(self, world):
        network = world.network
        cern = IA.parse("71-513")
        network.enroll_as(cern, [(IA.parse("71-20965"), 0.001)], name="CERN")
        orchestrator = Orchestrator(network, cern)
        assert orchestrator.plan_setup().total_hours < 8
        assert orchestrator.unhealthy(network.timestamp) == []

    def test_duplicate_enrollment_rejected(self, world):
        with pytest.raises(TopologyError, match="already enrolled"):
            world.network.enroll_as(
                IA.parse("71-225"), [(IA.parse("71-20965"), 0.01)]
            )

    def test_enrollment_requires_parent(self, world):
        with pytest.raises(TopologyError, match="parent"):
            world.network.enroll_as(IA.parse("71-7777"), [])

    def test_enrollment_requires_known_isd(self, world):
        with pytest.raises(TopologyError, match="ISD"):
            world.network.enroll_as(
                IA.parse("99-1"), [(IA.parse("71-20965"), 0.01)]
            )

    def test_enrolled_as_beacons_verify(self, world):
        """New AS's segments carry valid signatures under the ISD TRC."""
        from repro.scion.control.segments import Beacon

        network = world.network
        imec = IA.parse("71-2611")
        service = network.enroll_as(
            imec, [(IA.parse("71-20965"), 0.002)], name="imec",
        )
        resolver = Beacon.make_validating_key_resolver(
            network.cert_chain, network.trc_for, network.timestamp
        )
        ups = service.path_server.up_segments
        assert ups
        for segment in ups:
            segment.verify(resolver, network.timestamp)
