"""Deployment-wide integration: bootstrapping everywhere, trust evolution,
SCMP-driven failover, and green routing."""

import dataclasses
import random

import pytest

from repro.endhost.bootstrap.bootstrapper import Bootstrapper
from repro.endhost.bootstrap.hinting import HintMechanism
from repro.endhost.daemon import Daemon
from repro.endhost.pan import PanContext
from repro.endhost.policy import GreenPolicy, LowestLatencyPolicy
from repro.scion.addr import HostAddr, IA
from repro.scion.crypto.rsa import RsaKeyPair
from repro.scion.crypto.trc import Trc, verify_trc_chain
from repro.sciera.build import build_sciera
from repro.sciera.topology_data import SCIERA_PARTICIPANTS


@pytest.fixture(scope="module")
def world():
    return build_sciera(seed=61)


class TestBootstrapEverywhere:
    def test_every_participant_bootstraps(self, world):
        """A fresh device joins each of the 29 ASes successfully."""
        for p in SCIERA_PARTICIPANTS:
            if p.planned:
                continue
            result = world.bootstrapper_for(
                p.ia, rng=random.Random(p.ia)
            ).bootstrap()
            assert str(result.topology.ia) == p.ia
            assert result.topology.verify_signature()
            assert result.trcs

    @pytest.mark.parametrize("mechanism", [
        HintMechanism.DNS_SRV, HintMechanism.DNS_NAPTR, HintMechanism.DNS_SD,
        HintMechanism.DHCP_VIVO, HintMechanism.DHCP_OPTION72,
        HintMechanism.MDNS, HintMechanism.IPV6_NDP,
    ])
    def test_every_mechanism_bootstraps(self, world, mechanism):
        server = world.bootstrap_servers["71-225"]
        bootstrapper = Bootstrapper(
            world.environments["71-225"],
            {(server.ip, server.port): server},
            preference=(mechanism,),
            rng=random.Random(str(mechanism)),
        )
        result = bootstrapper.bootstrap()
        assert result.mechanism is mechanism


class TestTrustEvolution:
    def test_trc_update_rolls_out(self, world):
        """Issue a TRC update (rotating in a new root) and verify every
        AS's trust store accepts the chained update."""
        network = world.network
        trust = network.isd_trust[71]
        old = trust.trc
        new_root = RsaKeyPair.generate(seed=777)
        updated = Trc(
            isd=71,
            serial=old.serial + 1,
            base_serial=old.base_serial,
            not_before=old.not_before,
            not_after=old.not_after,
            core_ases=old.core_ases,
            authoritative_ases=old.authoritative_ases,
            root_keys={**old.root_keys, "root-isd71-v2": new_root.public},
            voting_quorum=1,
            description="root rotation",
        ).with_votes({"root-isd71": trust.root_key})
        updated.verify_update(old)
        verify_trc_chain([old, updated])
        for ia, service in network.services.items():
            if ia.isd != 71:
                continue
            service.trust_store.add_trc(updated)
            assert service.trust_store.latest(71).serial == updated.serial

    def test_unchained_update_rejected_everywhere(self, world):
        from repro.scion.crypto.trc import TrcError

        network = world.network
        old = network.isd_trust[71].trc
        rogue_root = RsaKeyPair.generate(seed=778)
        rogue = Trc(
            isd=71, serial=old.serial + 1, base_serial=old.base_serial,
            not_before=old.not_before, not_after=old.not_after,
            core_ases=("71-666",), authoritative_ases=("71-666",),
            root_keys={"rogue": rogue_root.public}, voting_quorum=1,
        ).with_votes({"rogue": rogue_root})
        service = network.services[IA.parse("71-225")]
        with pytest.raises(TrcError):
            service.trust_store.add_trc(rogue)


class TestScmpFailover:
    def test_router_scmp_feeds_daemon_path_pruning(self, world):
        """A router's interface-down SCMP removes affected paths from the
        daemon's answers until the state clears."""
        network = world.network
        src, dst = IA.parse("71-225"), IA.parse("71-1916")
        daemon = Daemon(network, src)
        before = daemon.lookup(dst, now=0.0)
        # The BRIDGES router reports its RNP-facing interface down.
        bridges = IA.parse("71-2:0:35")
        router = network.dataplane.routers[bridges]
        iface = next(
            i for i in network.topology.get(bridges).interfaces.values()
            if i.link_name == "rnp-bridges"
        )
        daemon.handle_scmp(router.interface_down_scmp(iface.ifid))
        after = daemon.lookup(dst, now=1.0)
        assert len(after) < len(before)
        banned = f"{bridges}#{iface.ifid}"
        for meta in after:
            assert banned not in meta.interfaces
        daemon.clear_interface_state()
        assert len(daemon.lookup(dst, now=2.0)) == len(before)


class TestGreenRouting:
    def test_green_policy_trades_latency_for_carbon(self, world):
        """Section 4.7's sustainability pitch: green paths exist, and when
        they differ from the fastest path they emit less carbon."""
        network = world.network
        src, dst = IA.parse("71-2:0:42"), IA.parse("71-2:0:3b")
        paths = network.paths(src, dst)
        greenest = GreenPolicy().best(paths)
        fastest = LowestLatencyPolicy().best(paths)
        assert greenest.carbon_gco2_per_gb <= fastest.carbon_gco2_per_gb
        assert network.probe(greenest).success

    def test_green_send_works_end_to_end(self, world):
        client = PanContext(world.host("71-2:0:42"))
        server_host = world.host("71-2:0:3b")
        server = PanContext(server_host).open_socket(6100)
        server.on_message(lambda p, s, pm: b"green-ack")
        sock = client.open_socket()
        result = sock.send_to(
            HostAddr(server_host.ia, server_host.ip, 6100), b"eco",
            policy=GreenPolicy(),
        )
        assert result.success
        assert result.reply == b"green-ack"
        server.close()
        sock.close()
