"""Test package."""
