"""Property-based integration: the full SCION stack on random topologies.

Hypothesis generates random multi-core AS hierarchies; for each one we
build a complete network (PKI, signed beaconing, registration, data plane)
and check the global invariants:

* every AS pair obtains at least one path from segment combination;
* every returned path starts at the source, ends at the destination, and
  probes successfully through MAC-verifying routers;
* no path visits the same link twice in the same direction segment-internally;
* path fingerprints are unique within a pair's path set.
"""

import random as stdlib_random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scion.addr import IA
from repro.scion.network import ScionNetwork
from repro.scion.topology import GlobalTopology, LinkType


@st.composite
def random_topology(draw):
    """A random valid SCION topology: 1-3 cores, up to 5 non-core ASes."""
    seed = draw(st.integers(0, 2**16))
    rng = stdlib_random.Random(seed)
    n_cores = draw(st.integers(1, 3))
    n_leaves = draw(st.integers(1, 5))

    topo = GlobalTopology()
    cores = [IA(71, i + 1) for i in range(n_cores)]
    for core in cores:
        topo.add_as(core, is_core=True)
    # Core mesh: connect consecutively, then add random extra core links.
    for a, b in zip(cores, cores[1:]):
        topo.add_link(a, b, LinkType.CORE, rng.uniform(0.001, 0.05))
    for _ in range(draw(st.integers(0, 2))):
        if n_cores >= 2:
            a, b = rng.sample(cores, 2)
            topo.add_link(a, b, LinkType.CORE, rng.uniform(0.001, 0.05))

    leaves = [IA(71, 100 + i) for i in range(n_leaves)]
    existing = list(cores)
    for leaf in leaves:
        topo.add_as(leaf)
        # 1-2 parents among already-placed ASes (keeps the DAG valid).
        n_parents = draw(st.integers(1, min(2, len(existing))))
        parents = rng.sample(existing, n_parents)
        for parent in parents:
            topo.add_link(leaf, parent, LinkType.PARENT,
                          rng.uniform(0.001, 0.02))
        existing.append(leaf)
    # Optional peering between two non-core ASes.
    if len(leaves) >= 2 and draw(st.booleans()):
        a, b = rng.sample(leaves, 2)
        topo.add_link(a, b, LinkType.PEER, rng.uniform(0.001, 0.01))
    return topo


@given(topology=random_topology())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_full_stack_invariants_on_random_topologies(topology):
    network = ScionNetwork(topology, seed=3, verify_beacons=True)
    ases = sorted(topology.ases)
    for src in ases:
        for dst in ases:
            if src == dst:
                continue
            paths = network.paths(src, dst)
            assert paths, f"no path {src} -> {dst}"
            fingerprints = [meta.fingerprint for meta in paths]
            assert len(fingerprints) == len(set(fingerprints))
            for meta in paths:
                assert meta.as_sequence[0] == src
                assert meta.as_sequence[-1] == dst
                result = network.probe(meta)
                assert result.success, (
                    f"{src}->{dst} via "
                    f"{[str(ia) for ia in meta.as_sequence]}: {result.failure}"
                )
                assert result.rtt_s > 0


@given(topology=random_topology(), data=st.data())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_link_failure_consistency_on_random_topologies(topology, data):
    """Active paths after a random link failure = exactly the paths that
    do not traverse the failed link."""
    network = ScionNetwork(topology, seed=3, verify_beacons=False)
    link_names = sorted(topology.links)
    victim = data.draw(st.sampled_from(link_names))
    ases = sorted(topology.ases)
    src, dst = ases[0], ases[-1]
    before = network.paths(src, dst)

    network.set_link_state(victim, False)
    active = {meta.fingerprint for meta in network.active_paths(src, dst)}
    network.set_link_state(victim, True)

    attachments = topology.link_attachments[victim]
    for meta in before:
        uses_victim = any(
            f"{ia}#{ifid}" in meta.interfaces for ia, ifid in attachments
        )
        if uses_victim:
            assert meta.fingerprint not in active
        else:
            assert meta.fingerprint in active
