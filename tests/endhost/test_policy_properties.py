"""Property-based tests on path policies."""

from hypothesis import given, settings, strategies as st

from repro.endhost.policy import (
    GeofencePolicy,
    GreenPolicy,
    LowestLatencyPolicy,
    SequencePolicy,
    ShortestPolicy,
)
from repro.scion.addr import IA
from repro.scion.crypto.keys import SymmetricKey
from repro.scion.path import (
    DataplanePath,
    HopField,
    InfoField,
    PathMeta,
    PathSegmentHops,
)

KEY = SymmetricKey(b"p" * 32)


@st.composite
def path_meta(draw):
    """A synthetic PathMeta over a random AS sequence."""
    length = draw(st.integers(1, 5))
    asns = draw(
        st.lists(st.integers(1, 50), min_size=length, max_size=length,
                 unique=True)
    )
    hops = []
    for index, asn in enumerate(asns):
        hops.append(
            HopField.create(
                IA(71, asn), KEY, 1000,
                cons_ingress=0 if index == 0 else index,
                cons_egress=0 if index == len(asns) - 1 else index + 1,
                beta=index,
            )
        )
    path = DataplanePath(
        (PathSegmentHops(InfoField(1000, 0, True), tuple(hops)),)
    )
    return PathMeta(
        path=path,
        latency_estimate_s=draw(st.floats(0.001, 0.5)),
        carbon_gco2_per_gb=draw(st.floats(0.0, 100.0)),
    )


metas = st.lists(path_meta(), min_size=0, max_size=8)


@given(metas)
@settings(max_examples=50, deadline=None)
def test_policies_return_subsets_in_order(paths):
    for policy in (ShortestPolicy(), LowestLatencyPolicy(), GreenPolicy()):
        ordered = policy.order(paths)
        # A pure ordering policy is a permutation; no invention, no loss.
        assert sorted(p.fingerprint for p in ordered) == sorted(
            p.fingerprint for p in paths
        )


@given(metas)
@settings(max_examples=50, deadline=None)
def test_policy_ordering_is_idempotent(paths):
    for policy in (ShortestPolicy(), LowestLatencyPolicy(), GreenPolicy()):
        once = policy.order(paths)
        twice = policy.order(once)
        assert [p.fingerprint for p in once] == [p.fingerprint for p in twice]


@given(metas, st.sets(st.integers(1, 50), max_size=5))
@settings(max_examples=50, deadline=None)
def test_geofence_filters_exactly_forbidden(paths, forbidden_asns):
    forbidden = {IA(71, asn) for asn in forbidden_asns}
    policy = GeofencePolicy(forbidden_ases=forbidden)
    allowed = policy.order(paths)
    for meta in paths:
        touches = any(ia in forbidden for ia in meta.as_sequence)
        assert (meta in allowed) == (not touches)


@given(metas)
@settings(max_examples=50, deadline=None)
def test_star_sequence_matches_everything(paths):
    assert SequencePolicy("0*").order(paths) == list(paths)


@given(path_meta())
@settings(max_examples=50, deadline=None)
def test_exact_sequence_matches_itself(meta):
    sequence = " ".join(str(ia) for ia in meta.as_sequence)
    assert SequencePolicy(sequence).matches(meta)
    # A mismatching sequence of the wrong length must not match.
    assert not SequencePolicy(sequence + " 71-5000").matches(meta)
