"""Test package."""
