"""Tests for path policies on real paths from the synthetic networks."""

import pytest

from repro.endhost.policy import (
    GeofencePolicy,
    GreenPolicy,
    LowestLatencyPolicy,
    MostDisjointPolicy,
    PolicyError,
    PreferencePolicy,
    SequencePolicy,
    ShortestPolicy,
    policy_from_commandline,
)
from repro.scion.addr import IA

A = IA.parse("71-100")
B = IA.parse("71-200")


@pytest.fixture(scope="module")
def paths(diamond_network):
    return diamond_network.paths(A, B)


class TestBasicPolicies:
    def test_shortest_orders_by_hops(self, paths):
        ordered = ShortestPolicy().order(paths)
        hops = [p.path.num_as_hops() for p in ordered]
        assert hops == sorted(hops)

    def test_lowest_latency(self, paths):
        ordered = LowestLatencyPolicy().order(paths)
        latencies = [p.latency_estimate_s for p in ordered]
        assert latencies == sorted(latencies)

    def test_lowest_latency_prefers_measured_rtt(self, paths):
        import dataclasses

        slow_but_measured_fast = dataclasses.replace(
            paths[-1], measured_rtt_s=0.0001
        )
        candidates = [paths[0], slow_but_measured_fast]
        best = LowestLatencyPolicy().best(candidates)
        assert best is slow_but_measured_fast

    def test_most_disjoint_vs_shortest(self, paths):
        shortest = ShortestPolicy().best(paths)
        ordered = MostDisjointPolicy([shortest]).order(paths)
        best = ordered[0]
        # The most disjoint path shares fewer interfaces with the shortest
        # than the shortest does with itself.
        assert best.shared_interfaces([shortest]) < len(shortest.interfaces)

    def test_green_orders_by_carbon(self, paths):
        ordered = GreenPolicy().order(paths)
        carbon = [p.carbon_gco2_per_gb for p in ordered]
        assert carbon == sorted(carbon)

    def test_best_of_empty_is_none(self):
        assert ShortestPolicy().best([]) is None


class TestGeofence:
    def test_forbidden_as_filters_paths(self, paths):
        c1 = IA.parse("71-1")
        fenced = GeofencePolicy(forbidden_ases=[c1]).order(paths)
        assert fenced
        for meta in fenced:
            assert c1 not in meta.as_sequence

    def test_forbidden_isd_filters_everything_here(self, paths):
        assert GeofencePolicy(forbidden_isds=[71]).order(paths) == []

    def test_allowed_isds(self, paths):
        assert GeofencePolicy(allowed_isds=[71]).order(paths) == list(paths)
        assert GeofencePolicy(allowed_isds=[64]).order(paths) == []


class TestSequence:
    def test_exact_sequence(self, paths):
        policy = SequencePolicy("71-100 71-2 71-200")
        matching = policy.order(paths)
        assert matching
        for meta in matching:
            assert [str(ia) for ia in meta.as_sequence] == [
                "71-100", "71-2", "71-200",
            ]

    def test_wildcard_star(self, paths):
        assert SequencePolicy("71-100 0* 71-200").order(paths) == list(paths)

    def test_single_any(self, paths):
        policy = SequencePolicy("71-100 0 71-200")
        for meta in policy.order(paths):
            assert meta.path.num_as_hops() == 3

    def test_isd_wildcard(self, paths):
        assert SequencePolicy("71-0 0* 71-0").order(paths) == list(paths)

    def test_via_specific_core(self, paths):
        policy = SequencePolicy("0* 71-1 0*")
        for meta in policy.order(paths):
            assert IA.parse("71-1") in meta.as_sequence

    @pytest.mark.parametrize("bad", ["", "banana", "71", "x-1 0*"])
    def test_malformed_sequences_rejected(self, bad):
        with pytest.raises(PolicyError):
            SequencePolicy(bad)


class TestPreferenceAndCommandline:
    def test_preference_latency(self, paths):
        ordered = PreferencePolicy("latency").order(paths)
        assert ordered[0].latency_estimate_s == min(
            p.latency_estimate_s for p in paths
        )

    def test_preference_multiple_criteria(self, paths):
        ordered = PreferencePolicy("hops,latency").order(paths)
        assert ordered[0].path.num_as_hops() == min(
            p.path.num_as_hops() for p in paths
        )

    def test_unknown_criterion_rejected(self):
        with pytest.raises(PolicyError, match="unknown preference"):
            PreferencePolicy("latency,vibes")
        with pytest.raises(PolicyError):
            PreferencePolicy("")

    def test_commandline_combination(self, paths):
        policy = policy_from_commandline(
            sequence="71-100 0* 71-200", preference="latency"
        )
        ordered = policy.order(paths)
        assert ordered[0].latency_estimate_s == min(
            p.latency_estimate_s for p in paths
        )

    def test_commandline_interactive(self, paths):
        chooser_calls = []

        def chooser(ordered):
            chooser_calls.append(len(ordered))
            return len(ordered) - 1  # the human picks the last one

        policy = policy_from_commandline(interactive=True, chooser=chooser)
        ordered = policy.order(paths)
        assert chooser_calls
        baseline = ShortestPolicy().order(paths)
        assert ordered[0] is baseline[-1]

    def test_interactive_needs_chooser(self):
        with pytest.raises(PolicyError, match="chooser"):
            policy_from_commandline(interactive=True)

    def test_interactive_bad_index_rejected(self, paths):
        policy = policy_from_commandline(
            interactive=True, chooser=lambda ordered: 999
        )
        with pytest.raises(PolicyError, match="invalid index"):
            policy.order(paths)

    def test_default_commandline_is_shortest(self, paths):
        policy = policy_from_commandline()
        assert policy.order(paths) == ShortestPolicy().order(paths)
