"""Endhost overload integration: daemon stale-serve, pan/bootstrap gating.

The client side of graceful degradation: a daemon that honors an overload
rejection by serving stale instead of retrying, congestion SCMP that never
down-marks an interface, and pan/bootstrap retries bounded by a shared
retry budget and circuit breaker.
"""

import random

import pytest

from repro.core.overload import CircuitBreaker, OverloadGuard, RetryBudget
from repro.core.retry import RetryPolicy
from repro.endhost.bootstrap import (
    BootstrapError,
    Bootstrapper,
    BootstrapServer,
    NetworkEnvironment,
    TransientBootstrapError,
)
from repro.endhost.daemon import Daemon
from repro.endhost.pan import HostRegistry, PanContext, ScionHost
from repro.endhost.policy import LowestLatencyPolicy
from repro.netsim.chaos import FaultInjector, FaultProfile
from repro.scion.addr import HostAddr, IA
from repro.scion.scmp import queue_full

A = IA.parse("71-100")
B = IA.parse("71-200")


@pytest.fixture()
def world(fresh_diamond_network):
    net = fresh_diamond_network
    registry = HostRegistry()
    host_a = ScionHost(net, A, "10.0.1.10", registry, daemon=Daemon(net, A))
    host_b = ScionHost(net, B, "10.0.2.20", registry, daemon=Daemon(net, B))
    return net, registry, host_a, host_b


class TestDaemonOverload:
    def test_rejection_serves_stale_without_retry(self, world):
        net, _, host_a, _ = world
        daemon = host_a.daemon
        fresh = daemon.lookup(B, now=0.0)
        assert fresh and not any(p.stale for p in fresh)
        # Saturate the path server's guard, then force a refresh past the
        # cache TTL: the fetch is rejected and the daemon degrades to the
        # stale copy instead of hammering the browned-out server.
        later = daemon.cache_ttl_s + 1.0
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.offer(later)
        net.services[A].path_server.guard = guard
        try:
            stale = daemon.lookup(B, now=later, deadline_s=later + 0.05)
            assert daemon.stats.rejected_overload == 1
            assert daemon.stats.stale_served == 1
            assert stale and all(p.stale for p in stale)
            assert guard.stats.rejected_queue_full == 1
            # The priming offer plus exactly one fetch — no retries.
            assert guard.stats.offered == 2
        finally:
            net.services[A].path_server.guard = None

    def test_deadline_propagates_to_path_server(self, world):
        net, _, host_a, _ = world
        daemon = host_a.daemon
        guard = OverloadGuard(0.01, codel_target_s=None)
        guard.offer(0.0)  # 10 ms backlog
        net.services[A].path_server.guard = guard
        try:
            # 5 ms of budget cannot cover the 10 ms backlog: rejected up
            # front, and with no cache yet the lookup comes back empty.
            paths = daemon.lookup(B, now=0.0, deadline_s=0.005)
            assert paths == []
            assert daemon.stats.rejected_overload == 1
            assert guard.stats.rejected_deadline == 1
        finally:
            net.services[A].path_server.guard = None

    def test_congestion_scmp_never_marks_interfaces_down(self, world):
        net, _, host_a, _ = world
        daemon = host_a.daemon
        before = daemon.lookup(B, now=0.0)
        origin, ifid = before[0].interfaces[0].split("#")
        daemon.handle_scmp(queue_full(origin, int(ifid)), now=1.0)
        assert daemon.stats.scmp_congestion == 1
        assert daemon.stats.scmp_interface_down == 0
        # All paths survive: congestion must not look like an outage.
        assert len(daemon.lookup(B, now=1.0)) == len(before)


class TestPanOverloadGating:
    def _client(self, world):
        net, registry, host_a, host_b = world
        ctx_a, ctx_b = PanContext(host_a), PanContext(host_b)
        ctx_b.open_socket(8080).on_message(lambda p, s, pa: b"ok")
        return net, ctx_a.open_socket(), HostAddr(B, host_b.ip, 8080)

    def test_retry_budget_stops_failover_amplification(self, world):
        net, client, dst = self._client(world)
        policy = LowestLatencyPolicy()
        client.send_with_failover(dst, b"warm", policy=policy, now=0.0)
        budget = RetryBudget(ratio=0.0, capacity=1.0)
        assert budget.try_retry()  # drain the bucket up front
        net.set_link_state("a-c1", False)
        net.set_link_state("a-c2", False)
        try:
            result = client.send_with_failover(
                dst, b"ping", policy=policy, max_attempts=4, now=1.0,
                retry_budget=budget,
            )
            assert not result.success
            # The first failover attempt needs a token; with ratio=0 the
            # fresh request earned none, so the storm stops immediately.
            assert result.failure == "retry-budget-exhausted"
            assert budget.spent == 1
            assert budget.exhausted == 1
        finally:
            net.set_link_state("a-c1", True)
            net.set_link_state("a-c2", True)

    def test_open_breaker_refuses_locally(self, world):
        net, client, dst = self._client(world)
        policy = LowestLatencyPolicy()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure(0.0)
        result = client.send_with_failover(
            dst, b"ping", policy=policy, now=1.0, breaker=breaker,
        )
        assert not result.success
        assert result.failure == "circuit-open"

    def test_breaker_closes_after_successful_probe(self, world):
        net, client, dst = self._client(world)
        policy = LowestLatencyPolicy()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure(0.0)
        result = client.send_with_failover(
            dst, b"ping", policy=policy, now=6.0, breaker=breaker,
        )
        assert result.success  # the half-open probe
        assert breaker.allow(6.1)


class TestBootstrapOverloadGating:
    def _chaotic_setup(self, net, down):
        service = net.services[A]
        server = BootstrapServer(
            topology=service.topology, signing_key=service.signing_key,
            certificate=service.certificate, trcs=[net.trc_for(71)],
        )
        injector = FaultInjector(seed=3)
        chaotic = injector.wrap_server(
            server, FaultProfile(), name="bootstrap"
        )
        if down:
            chaotic.set_down(True, now=0.0)
        env = NetworkEnvironment(has_dns_search_domain=True)
        env.advertise_everywhere(server.ip, server.port)
        return env, {(server.ip, server.port): chaotic}, chaotic

    def test_retry_budget_bounds_bootstrap_attempts(self, world):
        net, *_ = world
        env, servers, chaotic = self._chaotic_setup(net, down=True)
        budget = RetryBudget(ratio=0.0, capacity=2.0)
        client = Bootstrapper(
            env, servers, rng=random.Random(4),
            retry_policy=RetryPolicy(max_attempts=10, base_delay_s=0.01,
                                     max_delay_s=0.1, deadline_s=60.0),
            retry_budget=budget,
        )
        with pytest.raises(BootstrapError, match="retry budget exhausted"):
            client.bootstrap()
        # 1 fresh attempt + at most the 2 budgeted retries ever reach the
        # server — the budget, not the retry policy's 10 attempts, binds.
        assert 1 <= chaotic.refused_requests <= 3
        assert budget.exhausted == 1

    def test_open_breaker_fails_fast(self, world):
        net, *_ = world
        env, servers, chaotic = self._chaotic_setup(net, down=False)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=100.0)
        breaker.record_failure(0.0)
        client = Bootstrapper(
            env, servers, rng=random.Random(5), breaker=breaker,
        )
        with pytest.raises(TransientBootstrapError, match="circuit open"):
            client.bootstrap()
        assert chaotic.refused_requests == 0  # refused locally, server untouched

    def test_breaker_records_bootstrap_outcomes(self, world):
        net, *_ = world
        env, servers, _ = self._chaotic_setup(net, down=False)
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0)
        client = Bootstrapper(
            env, servers, rng=random.Random(6), breaker=breaker,
        )
        client.bootstrap()
        assert breaker.state.value == "closed"
        assert breaker.transitions == []
