"""Tests for the daemon, PAN context modes, sockets, and happy eyeballs."""

import random

import pytest

from repro.endhost.bootstrap import BootstrapServer, Bootstrapper, NetworkEnvironment
from repro.endhost.daemon import Daemon
from repro.endhost.happy_eyeballs import ConnectionAttempt, HappyEyeballs
from repro.endhost.pan import (
    AppLibraryMode,
    HostRegistry,
    PanContext,
    PanError,
    ScionHost,
)
from repro.endhost.policy import GeofencePolicy, LowestLatencyPolicy
from repro.scion.addr import HostAddr, IA
from repro.scion.scmp import interface_down

A = IA.parse("71-100")
B = IA.parse("71-200")


@pytest.fixture()
def world(fresh_diamond_network):
    """Two hosts, one per leaf AS; host A has a daemon, host B does not."""
    net = fresh_diamond_network
    registry = HostRegistry()
    daemon_a = Daemon(net, A)
    host_a = ScionHost(net, A, "10.0.1.10", registry, daemon=daemon_a)
    host_b = ScionHost(net, B, "10.0.2.20", registry, daemon=Daemon(net, B))
    return net, registry, host_a, host_b


class TestDaemon:
    def test_lookup_caches(self, world):
        net, _, host_a, _ = world
        daemon = host_a.daemon
        first = daemon.lookup(B, now=0.0)
        again = daemon.lookup(B, now=10.0)
        assert daemon.stats.cache_hits == 1
        assert [p.fingerprint for p in first] == [p.fingerprint for p in again]

    def test_cache_expires_after_ttl(self, world):
        net, _, host_a, _ = world
        daemon = host_a.daemon
        daemon.lookup(B, now=0.0)
        daemon.lookup(B, now=daemon.cache_ttl_s + 1)
        assert daemon.stats.cache_hits == 0
        assert daemon.stats.refreshes == 1

    def test_scmp_interface_down_filters_paths(self, world):
        net, _, host_a, _ = world
        daemon = host_a.daemon
        all_paths = daemon.lookup(B, now=0.0)
        # Report the first path's first interface as down.
        victim = all_paths[0].interfaces[0]
        origin, ifid = victim.split("#")
        daemon.handle_scmp(interface_down(origin, int(ifid)))
        filtered = daemon.lookup(B, now=1.0)
        assert len(filtered) < len(all_paths)
        for meta in filtered:
            assert victim not in meta.interfaces
        daemon.clear_interface_state()
        assert len(daemon.lookup(B, now=2.0)) == len(all_paths)

    def test_trust_store_populated(self, world):
        net, _, host_a, _ = world
        assert host_a.daemon.trust_store.latest(71).isd == 71


class TestPanModes:
    def test_daemon_mode_resolved(self, world):
        _, _, host_a, _ = world
        ctx = PanContext(host_a)
        assert ctx.ensure_ready() is AppLibraryMode.DAEMON
        assert ctx.setup_latency_s == 0.0

    def test_bootstrapper_mode(self, world):
        net, registry, _, _ = world
        service = net.services[A]
        server = BootstrapServer(service.topology, service.signing_key,
                                 service.certificate, [net.trc_for(71)])
        env = NetworkEnvironment(has_dns_search_domain=True)
        env.advertise_everywhere(server.ip, server.port)
        bootstrapper = Bootstrapper(env, {(server.ip, server.port): server},
                                    rng=random.Random(1))
        pre = bootstrapper.bootstrap()
        host = ScionHost(net, A, "10.0.1.11", registry, bootstrap_result=pre)
        ctx = PanContext(host)
        assert ctx.ensure_ready() is AppLibraryMode.BOOTSTRAPPER

    def test_standalone_mode_bootstraps_in_app(self, world):
        net, registry, _, _ = world
        service = net.services[A]
        server = BootstrapServer(service.topology, service.signing_key,
                                 service.certificate, [net.trc_for(71)])
        env = NetworkEnvironment(has_dns_search_domain=True)
        env.advertise_everywhere(server.ip, server.port)
        bootstrapper = Bootstrapper(env, {(server.ip, server.port): server},
                                    rng=random.Random(2))
        host = ScionHost(net, A, "10.0.1.12", registry, bootstrapper=bootstrapper)
        ctx = PanContext(host)
        assert ctx.ensure_ready() is AppLibraryMode.STANDALONE
        assert ctx.setup_latency_s > 0  # in-app bootstrap costs time

    def test_no_stack_at_all_raises(self, world):
        net, registry, _, _ = world
        host = ScionHost(net, A, "10.0.1.13", registry)
        with pytest.raises(PanError, match="cannot use SCION"):
            PanContext(host).ensure_ready()

    def test_migration_forces_standalone_rebootstrap(self, world):
        net, registry, _, _ = world
        service = net.services[A]
        server = BootstrapServer(service.topology, service.signing_key,
                                 service.certificate, [net.trc_for(71)])
        env = NetworkEnvironment(has_dns_search_domain=True)
        env.advertise_everywhere(server.ip, server.port)
        bootstrapper = Bootstrapper(env, {(server.ip, server.port): server},
                                    rng=random.Random(3))
        host = ScionHost(net, A, "10.0.1.14", registry, bootstrapper=bootstrapper)
        ctx = PanContext(host)
        ctx.ensure_ready()
        ctx.on_network_migration()
        assert ctx.mode is None  # must bootstrap again
        assert ctx.ensure_ready() is AppLibraryMode.STANDALONE


class TestSockets:
    def test_request_response(self, world):
        net, _, host_a, host_b = world
        ctx_a, ctx_b = PanContext(host_a), PanContext(host_b)
        server_sock = ctx_b.open_socket(8080)
        server_sock.on_message(lambda payload, src, path: b"pong:" + payload)
        client = ctx_a.open_socket()
        result = client.send_to(
            HostAddr(B, host_b.ip, 8080), b"ping"
        )
        assert result.success
        assert result.reply == b"pong:ping"
        assert result.rtt_s > 0
        assert server_sock.received[0][0] == b"ping"

    def test_send_uses_policy(self, world):
        net, _, host_a, host_b = world
        ctx_a, ctx_b = PanContext(host_a), PanContext(host_b)
        ctx_b.open_socket(8080).on_message(lambda p, s, pa: b"ok")
        client = ctx_a.open_socket()
        via_c1 = GeofencePolicy(forbidden_ases=[IA.parse("71-2")])
        # Forbidding C2 kills every A->B path (B hangs off C2 only).
        result = client.send_to(HostAddr(B, host_b.ip, 8080), b"x", policy=via_c1)
        assert not result.success
        avoid_c1 = GeofencePolicy(forbidden_ases=[IA.parse("71-1")])
        result = client.send_to(HostAddr(B, host_b.ip, 8080), b"x", policy=avoid_c1)
        assert result.success
        assert IA.parse("71-1") not in result.path.as_sequence

    def test_failover_after_link_cut(self, world):
        net, _, host_a, host_b = world
        ctx_a, ctx_b = PanContext(host_a), PanContext(host_b)
        ctx_b.open_socket(8080).on_message(lambda p, s, pa: b"ok")
        client = ctx_a.open_socket()
        # Cut the direct A-C2 link: the lowest-latency path dies.
        net.set_link_state("a-c2", False)
        plain = client.send_to(HostAddr(B, host_b.ip, 8080), b"x",
                               policy=LowestLatencyPolicy())
        assert not plain.success
        failover = client.send_with_failover(HostAddr(B, host_b.ip, 8080), b"x",
                                             policy=LowestLatencyPolicy())
        assert failover.success
        assert failover.paths_tried > 1

    def test_port_unreachable(self, world):
        net, _, host_a, host_b = world
        client = PanContext(host_a).open_socket()
        result = client.send_to(HostAddr(B, host_b.ip, 9), b"x")
        assert not result.success
        assert result.failure == "port-unreachable"

    def test_unknown_host(self, world):
        net, _, host_a, _ = world
        client = PanContext(host_a).open_socket()
        result = client.send_to(HostAddr(B, "10.99.99.99", 1), b"x")
        assert not result.success
        assert result.failure == "no-such-host"

    def test_intra_as_delivery(self, world):
        net, registry, host_a, _ = world
        neighbor = ScionHost(net, A, "10.0.1.99", registry,
                             daemon=host_a.daemon)
        ctx_n = PanContext(neighbor)
        ctx_n.open_socket(7000).on_message(lambda p, s, pa: b"hi")
        client = PanContext(host_a).open_socket()
        result = client.send_to(HostAddr(A, "10.0.1.99", 7000), b"x")
        assert result.success
        assert result.reply == b"hi"
        assert result.paths_tried == 0  # no inter-AS path involved

    def test_duplicate_port_rejected(self, world):
        _, _, host_a, _ = world
        ctx = PanContext(host_a)
        ctx.open_socket(5000)
        with pytest.raises(PanError, match="already bound"):
            ctx.open_socket(5000)


class TestHappyEyeballs:
    def test_scion_wins_when_available_and_fast(self):
        outcome = HappyEyeballs().race_scion_ip(scion_rtt_s=0.05, ip_rtt_s=0.04)
        # SCION starts first; IP's 10 ms advantage < 250 ms stagger.
        assert outcome.winner == "scion"
        assert not outcome.fallback_used

    def test_ip_fallback_when_scion_unavailable(self):
        outcome = HappyEyeballs().race_scion_ip(scion_rtt_s=None, ip_rtt_s=0.04)
        assert outcome.winner == "ip"
        assert outcome.fallback_used

    def test_ip_wins_when_scion_stalls_past_stagger(self):
        outcome = HappyEyeballs(stagger_s=0.1).race_scion_ip(
            scion_rtt_s=0.5, ip_rtt_s=0.01
        )
        assert outcome.winner == "ip"

    def test_all_unavailable_raises(self):
        with pytest.raises(ConnectionError):
            HappyEyeballs().race_scion_ip(None, None)

    def test_no_attempts_started_after_winner_completes(self):
        # SCION completes at 50 ms, before IP's 250 ms stagger start: per
        # RFC 8305 the fallback attempt is never launched.
        outcome = HappyEyeballs().race_scion_ip(scion_rtt_s=0.05, ip_rtt_s=0.04)
        assert outcome.winner == "scion"
        assert outcome.attempts_started == 1

    def test_fallback_start_counted_when_it_races(self):
        # SCION never completes, so IP starts at 250 ms and wins.
        outcome = HappyEyeballs().race_scion_ip(scion_rtt_s=None, ip_rtt_s=0.04)
        assert outcome.attempts_started == 2

    def test_attempt_staggered_past_winner_not_started(self):
        # scion would finish at 300 ms; ipv6 starts at 100 ms and wins at
        # 110 ms; ipv4's 200 ms start lies after the win — never launched.
        outcome = HappyEyeballs(stagger_s=0.1).race([
            ConnectionAttempt("scion", 0.3, preference_rank=0),
            ConnectionAttempt("ipv6", 0.01, preference_rank=1),
            ConnectionAttempt("ipv4", 0.01, preference_rank=2),
        ])
        assert outcome.winner == "ipv6"
        assert outcome.fallback_used
        assert outcome.attempts_started == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            HappyEyeballs(stagger_s=-1)
        with pytest.raises(ValueError):
            HappyEyeballs().race([])
        with pytest.raises(ValueError):
            HappyEyeballs().race(
                [ConnectionAttempt("scion", -0.5)]
            )
