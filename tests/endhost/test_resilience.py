"""End-host resilience under injected faults: the ISSUE's acceptance
scenarios — bootstrap falls back past a dead server with bounded retries,
and the daemon serves stale-but-marked paths through refresh failures."""

import random

import pytest

from repro.core.retry import RetryPolicy
from repro.endhost.bootstrap import (
    BootstrapServer,
    Bootstrapper,
    NetworkEnvironment,
    TransientBootstrapError,
)
from repro.endhost.daemon import Daemon
from repro.endhost.pan import HostRegistry, PanContext, ScionHost
from repro.endhost.policy import LowestLatencyPolicy
from repro.netsim.chaos import FaultInjector, FaultProfile
from repro.scion.addr import HostAddr, IA

A = IA.parse("71-100")
B = IA.parse("71-200")

RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.05, max_delay_s=1.0,
                    deadline_s=10.0)


def make_server(network, ip):
    service = network.services[A]
    return BootstrapServer(
        topology=service.topology,
        signing_key=service.signing_key,
        certificate=service.certificate,
        trcs=[network.trc_for(71)],
        ip=ip,
    )


def two_server_env(network, injector, outage=0.0):
    """Chaotic primary on the DNS channels, healthy secondary on DHCP."""
    primary = make_server(network, "10.0.1.1")
    secondary = make_server(network, "10.0.1.2")
    chaotic = injector.wrap_server(
        primary, FaultProfile(outage=outage), name="primary"
    )
    env = NetworkEnvironment(has_dns_search_domain=True, has_dhcp=True)
    env.dns_srv_hint = (primary.ip, primary.port)
    env.dns_sd_hint = (primary.ip, primary.port)
    env.dns_naptr_hint = (primary.ip, primary.port)
    env.dhcp_vivo_hint = (secondary.ip, secondary.port)
    servers = {
        (primary.ip, primary.port): chaotic,
        (secondary.ip, secondary.port): secondary,
    }
    return env, servers, chaotic


class TestBootstrapRetry:
    def test_fallback_to_secondary_on_hard_outage(self, diamond_network):
        """The ISSUE's headline scenario: primary down, bootstrap succeeds
        via the secondary with bounded retries and accounted wait time."""
        injector = FaultInjector(seed=1)
        env, servers, chaotic = two_server_env(diamond_network, injector)
        chaotic.set_down(True)
        client = Bootstrapper(env, servers, rng=random.Random(0),
                              retry_policy=RETRY)
        result = client.bootstrap()
        assert result.topology.ia == A
        assert result.attempts == 2
        assert result.attempts <= RETRY.max_attempts
        assert result.servers_failed == ("10.0.1.1:8041",)
        assert result.retry_wait_s > 0.0
        assert result.total_latency_s == pytest.approx(
            result.hint_latency_s + result.config_latency_s
            + result.retry_wait_s
        )

    def test_succeeds_under_probabilistic_refusals(self, diamond_network):
        injector = FaultInjector(seed=2)
        env, servers, _ = two_server_env(diamond_network, injector,
                                         outage=0.5)
        successes = 0
        for trial in range(20):
            client = Bootstrapper(env, servers,
                                  rng=random.Random(trial),
                                  retry_policy=RETRY)
            result = client.bootstrap()
            assert result.attempts <= RETRY.max_attempts
            successes += 1
        assert successes == 20

    def test_without_policy_fails_fast(self, diamond_network):
        injector = FaultInjector(seed=3)
        env, servers, chaotic = two_server_env(diamond_network, injector)
        chaotic.set_down(True)
        client = Bootstrapper(env, servers, rng=random.Random(0))
        with pytest.raises(TransientBootstrapError):
            client.bootstrap()

    def test_gives_up_when_every_server_down(self, diamond_network):
        injector = FaultInjector(seed=4)
        primary = make_server(diamond_network, "10.0.1.1")
        env = NetworkEnvironment(has_dns_search_domain=True)
        env.dns_srv_hint = (primary.ip, primary.port)
        chaotic = injector.wrap_server(primary, FaultProfile(), name="p")
        chaotic.set_down(True)
        client = Bootstrapper(
            env, {(primary.ip, primary.port): chaotic},
            rng=random.Random(0), retry_policy=RETRY,
        )
        with pytest.raises(TransientBootstrapError, match="gave up"):
            client.bootstrap()

    def test_deadline_bounds_total_wait(self, diamond_network):
        injector = FaultInjector(seed=5)
        primary = make_server(diamond_network, "10.0.1.1")
        env = NetworkEnvironment(has_dns_search_domain=True)
        env.dns_srv_hint = (primary.ip, primary.port)
        chaotic = injector.wrap_server(primary, FaultProfile(), name="p")
        chaotic.set_down(True)
        tight = RetryPolicy(max_attempts=1000, base_delay_s=0.05,
                            max_delay_s=0.5, deadline_s=2.0)
        client = Bootstrapper(
            env, {(primary.ip, primary.port): chaotic},
            rng=random.Random(0), retry_policy=tight,
        )
        with pytest.raises(TransientBootstrapError):
            client.bootstrap()
        # The deadline, not the huge attempt cap, stopped it.
        assert chaotic.refused_requests < 1000


class TestDaemonResilience:
    def test_failed_lookup_never_cached(self, diamond_network):
        calls = []

        def fetch(dst):
            calls.append(dst)
            raise ConnectionError("control plane unreachable")

        daemon = Daemon(diamond_network, A, fetch=fetch)
        assert daemon.lookup(B, now=0.0) == []
        assert daemon.lookup(B, now=1.0) == []
        assert len(calls) == 2  # re-queried, not served from cache
        assert daemon.stats.failed_fetches == 2
        assert daemon.stats.cache_hits == 0
        assert daemon.cached_destinations == []

    def test_stale_served_on_refresh_failure(self, diamond_network):
        real = [diamond_network.paths(A, B)]
        fail = []

        def fetch(dst):
            if fail:
                raise ConnectionError("refresh failed")
            return list(real[0])

        daemon = Daemon(diamond_network, A, cache_ttl_s=10.0, fetch=fetch)
        fresh = daemon.lookup(B, now=0.0)
        assert fresh and not any(m.stale for m in fresh)
        fail.append(True)
        # Past the TTL with a failing control plane: old paths, marked.
        stale = daemon.lookup(B, now=20.0)
        assert len(stale) == len(fresh)
        assert all(m.stale for m in stale)
        assert daemon.stats.stale_served == 1
        # Refresh healed: fresh paths again, stale flag gone.
        fail.clear()
        healed = daemon.lookup(B, now=40.0)
        assert healed and not any(m.stale for m in healed)
        assert daemon.stats.refreshes == 1

    def test_stats_invariant(self, diamond_network):
        daemon = Daemon(diamond_network, A, cache_ttl_s=10.0)
        daemon.lookup(B, now=0.0)    # fetch
        daemon.lookup(B, now=1.0)    # cache hit
        daemon.lookup(B, now=20.0)   # refresh
        stats = daemon.stats
        assert stats.lookups == stats.cache_hits + stats.fetches
        assert (stats.lookups, stats.cache_hits, stats.fetches,
                stats.refreshes) == (3, 1, 2, 1)

    def test_down_interface_reports_expire(self, fresh_diamond_network):
        network = fresh_diamond_network
        daemon = Daemon(network, A, down_interface_ttl_s=60.0)
        baseline = daemon.lookup(B, now=0.0)
        from repro.scion.scmp import interface_down
        ifid = int(baseline[0].interfaces[0].split("#")[1])
        origin = baseline[0].interfaces[0].split("#")[0]
        daemon.handle_scmp(interface_down(origin, ifid), now=0.0)
        assert daemon.down_interfaces == [f"{origin}#{ifid}"]
        filtered = daemon.lookup(B, now=1.0)
        assert len(filtered) < len(baseline)
        # Report expires on its TTL even without a re-probe.
        recovered = daemon.lookup(B, now=61.0)
        assert daemon.down_interfaces == []
        assert len(recovered) == len(baseline)


class TestPanFailover:
    def make_pair(self, network):
        registry = HostRegistry()
        host_a = ScionHost(network, A, "10.0.1.10", registry,
                           daemon=Daemon(network, A))
        host_b = ScionHost(network, B, "10.0.2.20", registry,
                           daemon=Daemon(network, B))
        PanContext(host_b).open_socket(8080).on_message(
            lambda p, s, pa: b"ok"
        )
        client = PanContext(host_a).open_socket()
        return client, host_a, HostAddr(B, host_b.ip, 8080)

    def test_scmp_failover_skips_dead_interface(self, fresh_diamond_network):
        network = fresh_diamond_network
        client, host_a, dst = self.make_pair(network)
        policy = LowestLatencyPolicy()
        warm = client.send_with_failover(dst, b"warm", policy=policy, now=0.5)
        assert warm.success
        network.set_link_state("a-c2", False)
        result = client.send_with_failover(dst, b"ping", policy=policy,
                                           now=1.0)
        assert result.success
        assert result.paths_tried > 1
        # The router's SCMP report landed in the daemon...
        daemon = host_a.daemon
        assert daemon.stats.scmp_interface_down >= 1
        assert daemon.down_interfaces
        # ...so the *next* send avoids the dead interface outright.
        again = client.send_with_failover(dst, b"ping", policy=policy,
                                          now=1.5)
        assert again.success
        assert again.paths_tried == 1

    def test_failover_survives_added_probe_loss(self, fresh_diamond_network):
        """10% probe loss on top of a link cut (ISSUE acceptance bound)."""
        network = fresh_diamond_network
        client, _, dst = self.make_pair(network)
        injector = FaultInjector(seed=6)
        restore = injector.wrap_dataplane(
            network.dataplane, FaultProfile(loss=0.10)
        )
        try:
            policy = LowestLatencyPolicy()
            client.send_with_failover(dst, b"warm", policy=policy, now=0.5)
            network.set_link_state("a-c2", False)
            delivered = 0
            for i in range(20):
                result = client.send_with_failover(
                    dst, b"ping", policy=policy, now=1.0 + i * 0.05
                )
                delivered += bool(result.success)
            assert delivered >= 19  # at most one 50ms retry window lost
        finally:
            restore()
