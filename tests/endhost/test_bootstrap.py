"""Tests for hint discovery, the bootstrap server, and the bootstrapper."""

import dataclasses
import random

import pytest

from repro.endhost.bootstrap import (
    BootstrapError,
    Bootstrapper,
    BootstrapServer,
    Hint,
    HintMechanism,
    NetworkEnvironment,
    NetworkScenario,
    availability,
    availability_matrix,
)
from repro.endhost.bootstrap.hinting import TABLE2_MECHANISMS
from repro.scion.addr import IA
from repro.scion.dataplane.underlay import IntraAsNetwork

A = IA.parse("71-100")


class TestTable2:
    """The availability matrix must reproduce Table 2 of the paper."""

    def test_row_count_matches_paper(self):
        assert len(TABLE2_MECHANISMS) == 7

    @pytest.mark.parametrize(
        "mechanism,scenario,expected",
        [
            (HintMechanism.DHCP_VIVO, NetworkScenario.DYN_DHCP_LEASES, "Y"),
            (HintMechanism.DHCP_VIVO, NetworkScenario.STATIC_IPS_ONLY, "N"),
            (HintMechanism.DHCPV6_VSIO, NetworkScenario.DYN_DHCPV6_LEASE, "Y"),
            (HintMechanism.DHCPV6_VSIO, NetworkScenario.DYN_DHCP_LEASES, "N"),
            (HintMechanism.IPV6_NDP, NetworkScenario.STATIC_IPS_ONLY, "N*"),
            (HintMechanism.IPV6_NDP, NetworkScenario.IPV6_RAS, "Y"),
            (HintMechanism.IPV6_NDP, NetworkScenario.DYN_DHCPV6_LEASE, "M"),
            (HintMechanism.DNS_SRV, NetworkScenario.DYN_DHCP_LEASES, "M"),
            (HintMechanism.DNS_SRV, NetworkScenario.LOCAL_DNS_SEARCH_DOMAIN, "Y"),
            (HintMechanism.MDNS, NetworkScenario.STATIC_IPS_ONLY, "Y"),
            (HintMechanism.DNS_NAPTR, NetworkScenario.IPV6_RAS, "Y"),
        ],
    )
    def test_cells(self, mechanism, scenario, expected):
        assert availability(mechanism, scenario) == expected

    def test_mdns_is_the_only_static_ip_mechanism(self):
        static_capable = [
            m for m in TABLE2_MECHANISMS
            if availability(m, NetworkScenario.STATIC_IPS_ONLY) == "Y"
        ]
        assert static_capable == [HintMechanism.MDNS]

    def test_matrix_is_complete(self):
        matrix = availability_matrix()
        assert len(matrix) == 7
        for row in matrix.values():
            assert set(row) == {s.value for s in NetworkScenario}
            assert set(row.values()) <= {"Y", "M", "N", "N*"}


class TestEnvironmentQueries:
    def test_query_returns_hint_when_channel_configured(self):
        env = NetworkEnvironment(has_dhcp=True)
        env.dhcp_vivo_hint = ("10.0.0.9", 8041)
        hint = env.query(HintMechanism.DHCP_VIVO)
        assert hint == Hint("10.0.0.9", 8041, HintMechanism.DHCP_VIVO)

    def test_query_requires_infrastructure(self):
        env = NetworkEnvironment(has_dhcp=False)
        env.dhcp_vivo_hint = ("10.0.0.9", 8041)
        assert env.query(HintMechanism.DHCP_VIVO) is None

    def test_ndp_requires_client_ipv6(self):
        env = NetworkEnvironment(has_ipv6_ras=True, client_has_ipv6=False)
        env.ndp_dns_hint = ("10.0.0.9", 8041)
        assert env.query(HintMechanism.IPV6_NDP) is None
        env.client_has_ipv6 = True
        assert env.query(HintMechanism.IPV6_NDP) is not None

    def test_advertise_everywhere_populates_available_channels(self):
        env = NetworkEnvironment(
            has_dhcp=True, has_dns_search_domain=True, has_mdns_responder=True
        )
        env.advertise_everywhere("10.0.0.9")
        found = [m for m in HintMechanism if env.query(m) is not None]
        assert HintMechanism.DHCP_VIVO in found
        assert HintMechanism.DNS_SRV in found
        assert HintMechanism.MDNS in found
        assert HintMechanism.DHCPV6_VSIO not in found


@pytest.fixture()
def bootstrap_setup(diamond_network):
    """A bootstrap server for AS A plus a matching environment."""
    net = diamond_network
    service = net.services[A]
    server = BootstrapServer(
        topology=service.topology,
        signing_key=service.signing_key,
        certificate=service.certificate,
        trcs=[net.trc_for(71)],
    )
    env = NetworkEnvironment(has_dhcp=True, has_dns_search_domain=True)
    env.advertise_everywhere(server.ip, server.port)
    servers = {(server.ip, server.port): server}
    return net, server, env, servers


class TestBootstrapper:
    def test_full_pipeline(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        bootstrapper = Bootstrapper(env, servers, os_name="Linux",
                                    rng=random.Random(1))
        result = bootstrapper.bootstrap()
        assert result.topology.ia == A
        assert result.topology.border_router_addresses
        assert result.trcs[0].isd == 71
        assert result.mechanism is HintMechanism.DNS_SRV  # first preference
        assert result.hint_latency_s > 0
        assert result.config_latency_s > 0
        assert result.total_latency_s < 0.5

    def test_fallback_when_dns_absent(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        env.has_dns_search_domain = False
        bootstrapper = Bootstrapper(env, servers, rng=random.Random(2))
        result = bootstrapper.bootstrap()
        assert result.mechanism is HintMechanism.DHCP_VIVO
        assert result.mechanisms_tried > 1

    def test_no_mechanism_raises(self, bootstrap_setup):
        net, server, _, servers = bootstrap_setup
        empty_env = NetworkEnvironment()
        bootstrapper = Bootstrapper(empty_env, servers, rng=random.Random(3))
        with pytest.raises(BootstrapError, match="no bootstrapping hint"):
            bootstrapper.bootstrap()

    def test_dangling_hint_raises(self, bootstrap_setup):
        net, server, env, _ = bootstrap_setup
        bootstrapper = Bootstrapper(env, servers={}, rng=random.Random(4))
        with pytest.raises(BootstrapError, match="no bootstrap server"):
            bootstrapper.bootstrap()

    def test_unknown_os_rejected(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        with pytest.raises(BootstrapError, match="unknown OS"):
            Bootstrapper(env, servers, os_name="TempleOS")

    def test_tampered_topology_rejected(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        # Tamper with the served document after signing.
        original = server._document
        server._document = dataclasses.replace(
            original, control_service_address="10.66.66.66"
        )
        bootstrapper = Bootstrapper(env, servers, rng=random.Random(5))
        with pytest.raises(BootstrapError, match="signature invalid"):
            bootstrapper.bootstrap()
        server._document = original

    def test_topology_signed_by_other_as_rejected(self, bootstrap_setup, diamond_network):
        net, server, env, servers = bootstrap_setup
        other = net.services[IA.parse("71-200")]
        rogue = BootstrapServer(
            topology=net.services[A].topology,
            signing_key=other.signing_key,       # wrong key
            certificate=other.certificate,       # wrong chain
            trcs=[net.trc_for(71)],
        )
        servers = {(rogue.ip, rogue.port): rogue}
        env2 = NetworkEnvironment(has_dns_search_domain=True)
        env2.advertise_everywhere(rogue.ip, rogue.port)
        bootstrapper = Bootstrapper(env2, servers, rng=random.Random(6))
        with pytest.raises(BootstrapError, match="different AS"):
            bootstrapper.bootstrap()

    def test_pinned_trc_mismatch_rejected(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        import dataclasses as dc
        foreign = dc.replace(net.trc_for(71), description="evil twin")
        bootstrapper = Bootstrapper(
            env, servers, rng=random.Random(7), pinned_trcs=[foreign]
        )
        with pytest.raises(BootstrapError, match="TRC"):
            bootstrapper.bootstrap()

    def test_pinned_trc_match_accepted(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        bootstrapper = Bootstrapper(
            env, servers, rng=random.Random(8), pinned_trcs=[net.trc_for(71)]
        )
        assert bootstrapper.bootstrap().topology.ia == A

    def test_underlay_latency_feeds_config_fetch(self, bootstrap_setup):
        net, server, env, servers = bootstrap_setup
        campus = IntraAsNetwork(base_latency_s=0.02, segment_hop_s=0.03)
        campus.add_segment("dmz")
        campus.add_segment("wifi")
        campus.connect_segments("dmz", "wifi")
        campus.add_host(server.ip, "dmz")
        campus.add_host("192.168.1.7", "wifi")
        near = Bootstrapper(env, servers, rng=random.Random(9))
        far = Bootstrapper(
            env, servers, rng=random.Random(9),
            underlay=campus, client_ip="192.168.1.7",
        )
        assert far.bootstrap().config_latency_s > near.bootstrap().config_latency_s

    def test_all_oses_bootstrap_quickly(self, bootstrap_setup):
        """Figure 4's claim: medians well under 150 ms on every OS."""
        net, server, env, servers = bootstrap_setup
        import statistics
        for os_name in ("Windows", "Linux", "Mac"):
            totals = []
            for run in range(30):
                bootstrapper = Bootstrapper(
                    env, servers, os_name=os_name, rng=random.Random(run)
                )
                totals.append(bootstrapper.bootstrap().total_latency_s)
            assert statistics.median(totals) < 0.150, os_name
