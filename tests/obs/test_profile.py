"""Tests for the continuous profiler: deterministic attribution, epochs,
folded stacks, and bounded sampling.

The deterministic side (call counts, sim-time gaps, table/folded
renderings with wall excluded) must be byte-identical across two
same-seed runs; the wall-clock side is driven here with a fake clock so
its extrapolation is testable without real timing.
"""

from repro.netsim.simulator import Simulator
from repro.obs import Profiler, Telemetry
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork
from tests.conftest import make_diamond_topology

A = IA.parse("71-100")
B = IA.parse("71-200")


class FakeClock:
    """A controllable perf_counter: each call advances by ``step_s``."""

    def __init__(self, step_s: float = 0.001):
        self.now = 0.0
        self.step_s = step_s

    def __call__(self) -> float:
        self.now += self.step_s
        return self.now


def _noop() -> None:
    pass


class Service:
    def __init__(self) -> None:
        self.ticks = 0

    def tick(self) -> None:
        self.ticks += 1


def _run_workload(profiler: Profiler) -> Simulator:
    sim = Simulator()
    sim.profiler = profiler
    service = Service()
    for i in range(10):
        sim.schedule(0.1 * (i + 1), service.tick)
    for i in range(5):
        sim.schedule(0.05 * (i + 1), _noop)
    sim.run_until_idle()
    assert service.ticks == 10
    return sim


class TestAttribution:
    def test_exact_call_counts(self):
        profiler = Profiler()
        _run_workload(profiler)
        by_path = {";".join(f): calls for f, calls, _, _ in profiler.rows()}
        assert by_path["sim;tests.obs.test_profile;Service.tick"] == 10
        assert by_path["sim;tests.obs.test_profile;_noop"] == 5

    def test_sim_time_gap_attribution(self):
        """Each event owns the sim-time gap it closes; the per-frame sums
        add up to the full simulated duration."""
        profiler = Profiler()
        _run_workload(profiler)
        total_sim = sum(sim_s for _, _, sim_s, _ in profiler.rows())
        # First event at t=0.05 attributes nothing (no predecessor);
        # the rest cover 0.05 .. 1.0.
        assert abs(total_sim - 0.95) < 1e-9

    def test_repro_module_prefix_stripped(self):
        profiler = Profiler()
        sim = Simulator()
        sim.profiler = profiler
        sim.schedule(1.0, sim.schedule, 1.0, _noop)
        sim.run_until_idle()
        paths = profiler.hot_paths(5)
        assert any(path.startswith("sim;netsim.simulator;") for path in paths)

    def test_explicit_section_start_finish(self):
        profiler = Profiler(sample_every=1, seed=0, clock=FakeClock())
        token = profiler.start()
        profiler.finish(token, ("dataplane", "walk", "delivered"), sim_s=0.25)
        ((frames, calls, sim_s, wall_s),) = profiler.rows()
        assert frames == ("dataplane", "walk", "delivered")
        assert calls == 1
        assert sim_s == 0.25
        assert wall_s > 0.0


class TestDeterminism:
    def test_tables_byte_identical_across_runs(self):
        tables = []
        folded = []
        for _ in range(2):
            profiler = Profiler(sample_every=8, seed=3)
            _run_workload(profiler)
            tables.append(profiler.render_table(include_wall=False))
            folded.append(profiler.folded())
        assert tables[0] == tables[1]
        assert folded[0] == folded[1]

    def test_wall_clock_excluded_from_deterministic_table(self):
        """Two profilers whose clocks disagree wildly still render the
        same deterministic table — wall time never leaks into it."""
        slow = Profiler(sample_every=1, clock=FakeClock(step_s=1.0))
        fast = Profiler(sample_every=1, clock=FakeClock(step_s=1e-9))
        _run_workload(slow)
        _run_workload(fast)
        assert slow.render_table(include_wall=False) \
            == fast.render_table(include_wall=False)
        assert slow.render_table(include_wall=True) \
            != fast.render_table(include_wall=True)

    def test_folded_lines_well_formed(self):
        profiler = Profiler()
        _run_workload(profiler)
        lines = profiler.folded()
        assert lines == sorted(lines)
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert len(stack.split(";")) == 3

    def test_folded_sim_us_weighting(self):
        profiler = Profiler()
        _run_workload(profiler)
        by_stack = dict(
            line.rsplit(" ", 1) for line in profiler.folded(weight="sim_us")
        )
        # Service.tick closes the 0.1-spaced gaps from 0.25 to 1.0:
        # 0.05 + 9 * 0.1 = 0.95 total minus _noop's share.
        total_us = sum(int(v) for v in by_stack.values())
        assert total_us == 950_000


class TestSampling:
    def test_seeded_stride_bounds_clock_calls(self):
        clock = FakeClock()
        profiler = Profiler(sample_every=4, seed=0, clock=clock)
        sim = Simulator()
        sim.profiler = profiler
        for i in range(40):
            sim.schedule(0.01 * (i + 1), _noop)
        sim.run_until_idle()
        ((_, calls, _, _),) = profiler.rows()
        assert calls == 40
        entry = profiler._selected(None)[
            ("sim", "tests.obs.test_profile", "_noop")
        ]
        assert entry.sampled == 10         # one in four
        assert clock.now > 0.0

    def test_wall_estimate_extrapolates(self):
        clock = FakeClock(step_s=0.5)      # each sampled call "costs" 0.5s
        profiler = Profiler(sample_every=4, seed=0, clock=clock)
        sim = Simulator()
        sim.profiler = profiler
        for i in range(8):
            sim.schedule(0.01 * (i + 1), _noop)
        sim.run_until_idle()
        ((_, calls, _, wall_estimate),) = profiler.rows()
        assert calls == 8
        # 2 sampled calls, 0.5s each -> 1.0s measured over 1/4 of calls,
        # extrapolated to 4.0s.
        assert abs(wall_estimate - 4.0) < 1e-9

    def test_different_seeds_sample_different_phase(self):
        calls_sampled = []
        for seed in (0, 1):
            clock = FakeClock()
            profiler = Profiler(sample_every=4, seed=seed, clock=clock)
            sim = Simulator()
            sim.profiler = profiler
            for i in range(6):
                sim.schedule(0.01 * (i + 1), _noop)
            sim.run_until_idle()
            entry = profiler._selected(None)[
                ("sim", "tests.obs.test_profile", "_noop")
            ]
            calls_sampled.append(entry.sampled)
        assert calls_sampled[0] >= 1
        assert calls_sampled[1] >= 1


class TestEpochs:
    def test_mark_epoch_segments_attribution(self):
        profiler = Profiler()
        _run_workload(profiler)
        profiler.mark_epoch("second")
        _run_workload(profiler)
        assert profiler.epoch_labels == ["epoch-0", "second"]
        first = {";".join(f): c for f, c, _, _ in profiler.rows(epoch=0)}
        second = {";".join(f): c for f, c, _, _ in profiler.rows(epoch=1)}
        merged = {";".join(f): c for f, c, _, _ in profiler.rows()}
        key = "sim;tests.obs.test_profile;Service.tick"
        assert first[key] == 10
        assert second[key] == 10
        assert merged[key] == 20

    def test_epoch_resets_gap_reference(self):
        """The first event after an epoch mark owns no gap — sim time
        spent in the previous epoch is not attributed across it."""
        profiler = Profiler()
        _run_workload(profiler)
        profiler.mark_epoch()
        sim = Simulator()
        sim.profiler = profiler
        sim.schedule(100.0, _noop)
        sim.run_until_idle()
        total = sum(s for _, _, s, _ in profiler.rows(epoch=1))
        assert total == 0.0

    def test_network_reset_stats_marks_epoch(self):
        tel = Telemetry()
        tel.profiler = Profiler()
        network = ScionNetwork(make_diamond_topology(), seed=5, telemetry=tel)
        network.paths(A, B, refresh=True)
        assert len(tel.profiler.epoch_labels) == 1
        network.reset_stats()
        assert len(tel.profiler.epoch_labels) == 2

    def test_render_table_names_epoch(self):
        profiler = Profiler()
        _run_workload(profiler)
        profiler.mark_epoch("beacon-epoch-1")
        table = profiler.render_table(epoch=1)
        assert "beacon-epoch-1" in table


class TestDataplaneIntegration:
    def test_walk_profiled_through_telemetry(self):
        tel = Telemetry()
        tel.profiler = Profiler()
        network = ScionNetwork(make_diamond_topology(), seed=5, telemetry=tel)
        path = network.paths(A, B, refresh=True)[0].path
        for i in range(7):
            assert network.dataplane.walk(path, now=float(i)).success
        rows = {";".join(f): c for f, c, _, _ in tel.profiler.rows()}
        assert rows["dataplane;ScionDataplane.walk;delivered"] == 7

    def test_walk_unprofiled_without_telemetry(self):
        network = ScionNetwork(make_diamond_topology(), seed=5)
        path = network.paths(A, B, refresh=True)[0].path
        assert network.dataplane.walk(path, now=0.0).success
