"""The unified event log and the network health report."""

from repro.core.monitoring import Alert
from repro.netsim.chaos import FaultEvent
from repro.obs import EventLog, NullEventLog, Telemetry, build_health_report
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork
from repro.scion.topology import GlobalTopology, LinkType

A = IA.parse("71-100")
B = IA.parse("71-200")


def _diamond():
    topo = GlobalTopology()
    c1, c2 = IA.parse("71-1"), IA.parse("71-2")
    topo.add_as(c1, is_core=True, name="core1")
    topo.add_as(c2, is_core=True, name="core2")
    topo.add_as(A, name="leafA")
    topo.add_as(B, name="leafB")
    topo.add_link(c1, c2, LinkType.CORE, 0.010, link_name="c1c2-a")
    topo.add_link(A, c1, LinkType.PARENT, 0.005, link_name="a-c1")
    topo.add_link(A, c2, LinkType.PARENT, 0.006, link_name="a-c2")
    topo.add_link(B, c2, LinkType.PARENT, 0.004, link_name="b-c2")
    return topo


def _lost(time_s, src="71-100", dst="71-200"):
    return Alert(time_s=time_s, kind="connectivity-lost", src=src, dst=dst,
                 email_to="noc@example.net", detail="probe timeout")


def _restored(time_s, src="71-100", dst="71-200"):
    return Alert(time_s=time_s, kind="connectivity-restored", src=src,
                 dst=dst, email_to="noc@example.net")


class TestEventLog:
    def test_timeline_orders_by_time_then_sequence(self):
        log = EventLog()
        log.record(2.0, "chaos", "link-down", target="x")
        log.record(1.0, "supervisor", "service-restart", target="ps")
        log.record(1.0, "monitor", "connectivity-lost", target="a->b")
        kinds = [e.kind for e in log.timeline()]
        assert kinds == ["service-restart", "connectivity-lost", "link-down"]

    def test_filters(self):
        log = EventLog()
        log.record(1.0, "chaos", "link-down")
        log.record(2.0, "chaos", "link-up")
        log.record(3.0, "supervisor", "service-crash")
        assert len(log.timeline(source="chaos")) == 2
        assert len(log.timeline(kind="link-up")) == 1
        assert len(log.timeline(since=2.5)) == 1

    def test_alert_dedup_for_already_down_pair(self):
        log = EventLog()
        assert log.record_alert(_lost(1.0)) is not None
        assert log.record_alert(_lost(1.5)) is None  # same pair, still down
        assert log.suppressed_alerts == 1
        assert log.down_pairs() == ["71-100->71-200"]
        assert log.record_alert(_restored(2.0)) is not None
        assert log.down_pairs() == []
        # After restoration the next loss is news again.
        assert log.record_alert(_lost(3.0)) is not None
        assert log.suppressed_alerts == 1

    def test_distinct_pairs_not_deduplicated(self):
        log = EventLog()
        assert log.record_alert(_lost(1.0)) is not None
        assert log.record_alert(_lost(1.0, dst="71-2")) is not None
        assert log.suppressed_alerts == 0

    def test_fault_severity_mapping(self):
        log = EventLog()
        down = log.record_fault(FaultEvent(1.0, "a-c1", "link-down"))
        up = log.record_fault(FaultEvent(2.0, "a-c1", "link-up"))
        assert down.severity == "critical"
        assert up.severity == "info"

    def test_supervisor_sink_adapter(self):
        log = EventLog()
        sink = log.supervisor_sink()
        sink(1.0, "ps:71-200", "service-crash", "chaos kill")
        sink(2.0, "ps:71-200", "service-restart", "warm")
        (crash, restart) = log.timeline(source="supervisor")
        assert crash.severity == "critical"
        assert restart.severity == "info"

    def test_digest_is_deterministic_and_sensitive(self):
        def build(extra=False):
            log = EventLog()
            log.record(1.0, "chaos", "link-down", target="a-c1")
            if extra:
                log.record(2.0, "chaos", "link-up", target="a-c1")
            return log.digest()

        assert build() == build()
        assert build() != build(extra=True)

    def test_null_event_log_records_nothing(self):
        log = NullEventLog()
        log.record(1.0, "chaos", "link-down")
        assert log.record_alert(_lost(1.0)) is None
        assert log.events == []


class TestHealthReport:
    def _network(self):
        tel = Telemetry()
        network = ScionNetwork(_diamond(), seed=5, telemetry=tel)
        return network, tel

    def test_fresh_network_is_healthy(self):
        network, _ = self._network()
        report = build_health_report(network, now=float(network.timestamp))
        assert report.healthy
        assert report.down_links == []
        # Beaconing ran at construction: every AS has a fresh segment.
        assert set(report.beacon_freshness_s) == {
            str(ia) for ia in network.topology.ases
        }
        assert all(
            age is not None and age < 3600.0
            for age in report.beacon_freshness_s.values()
        )

    def test_down_link_flips_health(self):
        network, tel = self._network()
        network.set_link_state("a-c2", False)
        try:
            report = build_health_report(
                network, now=float(network.timestamp), events=tel.events
            )
            assert not report.healthy
            assert "a-c2" in report.down_links
            text = report.render()
            assert "a-c2" in text
            assert "down links" in text
        finally:
            network.set_link_state("a-c2", True)

    def test_report_serializes(self):
        import json

        network, tel = self._network()
        report = build_health_report(
            network, now=float(network.timestamp), events=tel.events
        )
        doc = json.loads(report.to_json())
        assert doc["quarantined_segments"] == 0
        assert doc["status"] == "OK"

    def test_overloaded_is_its_own_status_tier(self):
        from repro.core.overload import OverloadGuard

        network, _ = self._network()
        now = float(network.timestamp)
        guard = OverloadGuard(0.01, name="ps-a", codel_target_s=0.005)
        for _ in range(5):
            guard.offer(now)  # 50 ms backlog: well past the 5 ms target
        report = build_health_report(network, now=now, guards={"ps-a": guard})
        # Everything is up — the service is saturated, not broken.
        assert report.healthy
        assert report.status == "OVERLOADED"
        assert report.overloaded_services["ps-a"] > 0.005
        text = report.render()
        assert "OVERLOADED" in text
        assert "ps-a: queue delay" in text

    def test_down_outranks_overloaded(self):
        from repro.core.overload import OverloadGuard

        network, _ = self._network()
        now = float(network.timestamp)
        guard = OverloadGuard(0.01, name="ps-a", codel_target_s=0.005)
        for _ in range(5):
            guard.offer(now)
        network.set_link_state("a-c2", False)
        try:
            report = build_health_report(
                network, now=now, guards={"ps-a": guard}
            )
            assert report.status == "DOWN"
            assert report.overloaded_services  # still listed, outranked
        finally:
            network.set_link_state("a-c2", True)

    def test_idle_guard_does_not_surface(self):
        from repro.core.overload import OverloadGuard

        network, _ = self._network()
        now = float(network.timestamp)
        guard = OverloadGuard(0.01, name="ps-a", codel_target_s=0.005)
        report = build_health_report(network, now=now, guards={"ps-a": guard})
        assert report.status == "OK"
        assert report.overloaded_services == {}
