"""The stats reset audit: cumulative counters, explicit epoch boundaries.

``RouterStats`` and ``RegistryStats`` deliberately accumulate across
``run_beaconing`` epochs (Prometheus counter semantics) — an experiment
wanting a clean baseline calls ``network.reset_stats()`` explicitly
instead of relying on components being silently rebuilt.
"""

import dataclasses

import pytest

from repro.obs import (
    NOOP_TELEMETRY,
    CounterBackedStats,
    MetricsRegistry,
    Telemetry,
    reset_stats,
    resolve,
)
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork
from repro.scion.topology import GlobalTopology, LinkType

A = IA.parse("71-100")
B = IA.parse("71-200")


def _topology():
    topo = GlobalTopology()
    core = IA.parse("71-1")
    topo.add_as(core, is_core=True, name="core")
    topo.add_as(A, name="leafA")
    topo.add_as(B, name="leafB")
    topo.add_link(A, core, LinkType.PARENT, 0.005, link_name="a-core")
    topo.add_link(B, core, LinkType.PARENT, 0.004, link_name="b-core")
    return topo


class _DemoStats(CounterBackedStats):
    FIELDS = ("hits", "misses")
    PREFIX = "demo"


class TestCounterBackedStats:
    def test_standalone_fields_read_as_ints(self):
        stats = _DemoStats()
        stats.inc("hits")
        stats.inc("hits", 2)
        assert stats.hits == 3
        assert isinstance(stats.hits, int)
        assert stats.misses == 0
        assert stats.as_dict() == {"hits": 3, "misses": 0}

    def test_unknown_field_raises(self):
        with pytest.raises(AttributeError):
            _DemoStats().nonsense

    def test_reset(self):
        stats = _DemoStats()
        stats.inc("misses", 5)
        stats.reset()
        assert stats.misses == 0

    def test_registry_backed_fields_are_shared_views(self):
        metrics = MetricsRegistry()
        stats = _DemoStats(metrics, labels={"as": "71-1"})
        stats.inc("hits", 4)
        counter = metrics.counter("demo_hits_total", labels={"as": "71-1"})
        assert counter.value == 4
        assert 'demo_hits_total{as="71-1"} 4' in metrics.prometheus_text()

    def test_reset_stats_handles_plain_dataclasses(self):
        @dataclasses.dataclass
        class Plain:
            rounds: int = 0
            names: list = dataclasses.field(default_factory=list)

        plain = Plain(rounds=7, names=["x"])
        reset_stats(plain)
        assert plain.rounds == 0
        assert plain.names == []
        backed = _DemoStats()
        backed.inc("hits")
        reset_stats(backed)
        assert backed.hits == 0


class TestEpochConvention:
    def test_stats_survive_run_beaconing_epochs(self):
        network = ScionNetwork(_topology(), seed=3, telemetry=Telemetry())
        network.registry.stats.inc("lookups")
        router = network.dataplane.routers[A]
        router.stats.inc("forwarded", 10)
        lookups_before = network.registry.stats.lookups
        network.run_beaconing()
        # Cumulative counter semantics: a beaconing epoch is not a reset.
        assert network.registry.stats.lookups >= lookups_before
        assert network.dataplane.routers[A].stats.forwarded == 10

    def test_reset_stats_is_the_epoch_boundary(self):
        network = ScionNetwork(_topology(), seed=3, telemetry=Telemetry())
        network.registry.stats.inc("lookups", 3)
        network.dataplane.routers[A].stats.inc("forwarded", 2)
        network.reset_stats()
        assert network.registry.stats.lookups == 0
        for router in network.dataplane.routers.values():
            assert router.stats.forwarded == 0
            assert router.stats.queue_drops == 0


class TestDisabledMode:
    def test_resolve_none_is_the_shared_noop(self):
        assert resolve(None) is NOOP_TELEMETRY
        assert not NOOP_TELEMETRY.enabled

    def test_network_without_telemetry_keeps_working_stats(self):
        network = ScionNetwork(_topology(), seed=3)
        assert network.telemetry is NOOP_TELEMETRY
        router = network.dataplane.routers[A]
        router.stats.inc("forwarded")
        assert router.stats.forwarded == 1
        assert network.registry.stats.lookups >= 0
        # Nothing is exported: the no-op registry renders empty.
        assert network.telemetry.metrics.prometheus_text() == ""
