"""Unit and property tests for the sim-time tracer.

The property test builds random span trees through the public API (a mix
of stack-based nesting and explicit parenting) and asserts the invariants
``validate_trace`` promises: every parent exists, no parent-link cycles,
and children stay inside their parent's sim-time bounds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import NullTracer, Tracer, validate_trace


class TestStackNesting:
    def test_begin_end_parents_to_innermost(self):
        t = Tracer()
        outer = t.begin("outer", now=1.0)
        inner = t.begin("inner", now=2.0)
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        t.end(inner, now=3.0)
        t.end(outer, now=4.0)
        assert inner.finished and outer.finished
        assert validate_trace(t.spans(outer.trace_id)) == []

    def test_span_context_manager_marks_errors(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("op", now=1.0):
                raise RuntimeError("boom")
        (span,) = t.spans(name="op")
        assert span.status == "error"
        assert span.finished

    def test_sibling_roots_get_distinct_traces(self):
        t = Tracer()
        a = t.begin("a")
        t.end(a)
        b = t.begin("b")
        t.end(b)
        assert a.trace_id != b.trace_id
        assert t.traces() == [a.trace_id, b.trace_id]

    def test_annotate_attaches_to_open_span(self):
        t = Tracer()
        with t.span("op") as span:
            t.annotate(paths=3)
        assert span.attrs["paths"] == "3"


class TestExplicitParenting:
    def test_open_with_explicit_parent_skips_stack(self):
        t = Tracer()
        root = t.open("root", now=0.0)
        child = t.open("child", now=0.5, parent=root)
        # The stack stays empty: open() never pushes.
        assert t.current() is None
        t.end(child, now=1.0)
        t.end(root, now=2.0)
        assert child.parent_id == root.span_id
        assert validate_trace(t.spans(root.trace_id)) == []

    def test_add_records_instant_span(self):
        t = Tracer()
        root = t.open("root", now=0.0)
        hop = t.add("hop", now=0.25, parent=root, egress=3)
        assert hop.start_s == hop.end_s == 0.25
        assert hop.attrs["egress"] == "3"
        assert hop.duration_s() == 0.0

    def test_clock_is_monotonic_high_water(self):
        t = Tracer()
        t.advance(5.0)
        span = t.add("late", now=1.0)
        # Explicit past times are clamped up to the high-water mark so
        # traces never move backwards in sim time.
        assert span.start_s == 5.0
        assert t.advance(None) == 5.0


class TestValidation:
    def test_missing_parent_reported(self):
        t = Tracer()
        root = t.open("root", now=0.0)
        child = t.open("child", now=0.1, parent=root)
        t.end(child, now=0.2)
        t.end(root, now=0.3)
        spans = t.spans(root.trace_id)
        # Drop the root: the child's parent link now dangles.
        problems = validate_trace([s for s in spans if s is not root])
        assert any("missing" in p for p in problems)

    def test_child_escaping_parent_bounds_reported(self):
        t = Tracer()
        root = t.open("root", now=0.0)
        child = t.open("child", now=0.5, parent=root)
        t.end(root, now=1.0)
        child.end_s = 2.0  # forged: outlives its parent
        problems = validate_trace(t.spans(root.trace_id))
        assert any("after parent" in p for p in problems)

    def test_cycle_reported(self):
        t = Tracer()
        a = t.open("a", now=0.0)
        b = t.open("b", now=0.0, parent=a)
        a.parent_id = b.span_id  # forged cycle
        problems = validate_trace(t.spans(a.trace_id))
        assert any("cycle" in p for p in problems)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["push", "pop", "instant", "detached"]),
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
        ),
        max_size=40,
    )
)
def test_trace_tree_integrity_property(ops):
    """Any interleaving of the public API yields structurally valid traces."""
    t = Tracer()
    detached = []

    def close_detached(now=None):
        # Children close before (or with) their parents, as the real
        # instrumentation does: a detached span may hang off the innermost
        # stack span, so it must not outlive a pop.
        for span in reversed(detached):
            if not span.finished:
                t.end(span, now=now)
        detached.clear()

    for op, now in ops:
        if op == "push":
            t.begin("op", now=now)
        elif op == "pop":
            current = t.current()
            if current is not None:
                close_detached(now=now)
                t.end(current, now=now)
        elif op == "instant":
            t.add("instant", now=now)
        else:
            parent = detached[-1] if detached else None
            detached.append(t.open("detached", now=now, parent=parent))
    # Close everything still open, at the high-water mark.
    close_detached()
    while t.current() is not None:
        t.end(t.current())
    for trace_id in t.traces():
        assert validate_trace(t.spans(trace_id)) == []


class TestNullTracer:
    def test_records_nothing(self):
        t = NullTracer()
        assert t.enabled is False
        with t.span("op"):
            t.annotate(x=1)
        root = t.open("root", now=1.0)
        t.add("child", parent=root)
        t.end(root)
        assert t.spans() == []
        assert t.traces() == []
