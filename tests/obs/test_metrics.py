"""Unit and property tests for the metrics registry.

The streaming histogram's quantile estimates are property-tested against
numpy's exact quantiles: with bucket growth factor G, the relative error
of any quantile is bounded by roughly G - 1 (plus interpolation slack), so
the tolerance here is deliberately loose at 10%.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    EXPORT_QUANTILES,
    Counter,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("h")
        for v in (0.5, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(3.5)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(2.0)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_single_sample(self):
        h = Histogram("h")
        h.observe(7.0)
        assert h.quantile(0.5) == pytest.approx(7.0, rel=0.05)

    def test_nonpositive_values_bucketed(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(1.0)
        assert h.count == 3
        # Half of the mass is at <= 0; the median sits at the zero bucket.
        assert h.quantile(0.0) <= 0.0

    def test_reset(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.sum == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=400,
        ),
        st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    def test_quantiles_match_numpy(self, values, q):
        """Streaming estimate vs exact numpy quantile, within 10% rel."""
        h = Histogram("h")
        for v in values:
            h.observe(v)
        exact = float(np.quantile(values, q, method="linear"))
        estimate = h.quantile(q)
        assert estimate == pytest.approx(exact, rel=0.10, abs=1e-9)


class TestRegistry:
    def test_counter_identity_per_labelset(self):
        m = MetricsRegistry()
        a = m.counter("x_total", "x", labels={"as": "1"})
        b = m.counter("x_total", labels={"as": "1"})
        c = m.counter("x_total", labels={"as": "2"})
        assert a is b
        assert a is not c

    def test_kind_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("thing")
        with pytest.raises(ValueError):
            m.gauge("thing")

    def test_prometheus_text_format(self):
        m = MetricsRegistry()
        m.counter("req_total", "requests", labels={"as": "71-1"}).inc(3)
        m.gauge("depth", "queue depth").set(2)
        h = m.histogram("lat_seconds", "latency")
        h.observe(0.25)
        text = m.prometheus_text()
        assert "# TYPE req_total counter" in text
        assert 'req_total{as="71-1"} 3' in text
        assert "depth 2" in text
        assert "lat_seconds_count 1" in text
        for q in EXPORT_QUANTILES:
            assert f'quantile="{q}"' in text

    def test_prometheus_text_deterministic(self):
        def build():
            m = MetricsRegistry()
            m.counter("b_total", labels={"z": "1"}).inc()
            m.counter("a_total").inc(2)
            m.histogram("h_seconds").observe(0.5)
            return m.prometheus_text()

        assert build() == build()

    def test_json_export_round_trips(self):
        m = MetricsRegistry()
        m.counter("a_total").inc()
        payload = json.loads(m.to_json())
        assert "a_total" in payload

    def test_collectors_run_at_export(self):
        m = MetricsRegistry()
        calls = []
        m.register_collector(lambda reg: calls.append(1) or
                             reg.gauge("pulled").set(9))
        assert not calls
        text = m.prometheus_text()
        assert calls == [1]
        assert "pulled 9" in text

    def test_reset_zeroes_everything(self):
        m = MetricsRegistry()
        c = m.counter("a_total")
        c.inc(5)
        h = m.histogram("h_seconds")
        h.observe(1.0)
        m.reset()
        assert c.value == 0
        assert h.count == 0


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        n = NullRegistry()
        c1 = n.counter("a_total", labels={"x": "1"})
        c2 = n.counter("b_total")
        assert c1 is c2
        c1.inc(100)
        assert c1.value == 0.0
        n.histogram("h").observe(3.0)
        n.gauge("g").set(5.0)
        assert n.prometheus_text() == ""


class TestCardinalityCap:
    """Regression tests at the cap boundary: a per-path label leak at
    5000 ASes must collapse into one overflow child, not eat the
    registry."""

    def test_children_below_cap_unaffected(self):
        m = MetricsRegistry(max_children_per_family=4)
        for i in range(4):
            m.counter("req_total", labels={"as": f"71-{i}"}).inc()
        family = m._families["req_total"]
        assert len(family.children) == 4
        assert family.overflowed == 0
        assert 'overflow="true"' not in m.prometheus_text()

    def test_boundary_new_label_set_collapses_into_overflow(self):
        m = MetricsRegistry(max_children_per_family=4)
        for i in range(4):
            m.counter("req_total", labels={"as": f"71-{i}"}).inc()
        # The 5th distinct label set lands in the overflow child.
        spilled = m.counter("req_total", labels={"as": "71-999"})
        spilled.inc(3)
        family = m._families["req_total"]
        assert family.overflowed == 1
        text = m.prometheus_text()
        assert 'req_total{overflow="true"} 3' in text

    def test_existing_children_still_writable_past_cap(self):
        m = MetricsRegistry(max_children_per_family=2)
        first = m.counter("req_total", labels={"as": "a"})
        m.counter("req_total", labels={"as": "b"})
        m.counter("req_total", labels={"as": "c"}).inc()  # overflowed
        again = m.counter("req_total", labels={"as": "a"})
        assert again is first                 # cap gates creation only
        again.inc(2)
        assert first.value == 2

    def test_overflow_child_shared_and_counted(self):
        m = MetricsRegistry(max_children_per_family=1)
        m.counter("req_total", labels={"as": "a"}).inc()
        one = m.counter("req_total", labels={"as": "b"})
        two = m.counter("req_total", labels={"as": "c"})
        assert one is two
        one.inc()
        two.inc()
        family = m._families["req_total"]
        assert family.overflowed == 2
        assert family.children[
            (("overflow", "true"),)
        ].value == 2

    def test_histograms_capped_too(self):
        m = MetricsRegistry(max_children_per_family=1)
        m.histogram("lat_seconds", labels={"as": "a"}).observe(0.1)
        spill = m.histogram("lat_seconds", labels={"as": "b"})
        spill.observe(0.2)
        text = m.prometheus_text()
        assert 'lat_seconds_count{overflow="true"} 1' in text

    def test_default_cap_is_generous(self):
        m = MetricsRegistry()
        assert m.max_children_per_family == 1024

    def test_export_deterministic_with_overflow(self):
        def build():
            m = MetricsRegistry(max_children_per_family=2)
            for i in range(5):
                m.counter("req_total", labels={"as": f"71-{i}"}).inc()
            return m.prometheus_text()

        assert build() == build()
