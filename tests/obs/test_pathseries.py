"""Tests for the per-path time-series exporter (ScionPathML shape):
probe/churn/revocation rows, deterministic export, and the opt-in wiring
through pan and the daemon."""

import json

from repro.endhost.daemon import Daemon
from repro.endhost.pan import HostRegistry, PanContext, ScionHost
from repro.obs import PathSeriesRecorder, Telemetry
from repro.scion.addr import HostAddr, IA
from repro.scion.network import ScionNetwork
from repro.scion.revocation import Revocation
from repro.scion.scmp import interface_down
from tests.conftest import make_diamond_topology

A = IA.parse("71-100")
B = IA.parse("71-200")


class TestRecorder:
    def test_probe_rows(self):
        rec = PathSeriesRecorder()
        rec.record_probe(1.0, "71-100", "71-200", "fp1", 0.021, True)
        rec.record_probe(2.0, "71-100", "71-200", "fp1", 0.0, False,
                         failure="link-down")
        probes = rec.series_for("71-100", "71-200")
        assert len(probes) == 2
        assert probes[0].rtt_ms == 21.0
        assert probes[1].ok is False
        assert probes[1].detail == "link-down"

    def test_selection_diffs_become_churn(self):
        rec = PathSeriesRecorder()
        rec.record_selection(1.0, "a", "b", ["p1", "p2"])
        assert rec.samples == []            # first lookup: no baseline
        rec.record_selection(2.0, "a", "b", ["p2", "p3"])
        events = [(s.event, s.fingerprint) for s in rec.samples]
        assert events == [("path-appeared", "p3"),
                          ("path-disappeared", "p1")]
        assert rec.churn_counts() == {"a->b": 2}

    def test_selection_tracked_per_pair(self):
        rec = PathSeriesRecorder()
        rec.record_selection(1.0, "a", "b", ["p1"])
        rec.record_selection(1.0, "a", "c", ["p1"])
        rec.record_selection(2.0, "a", "b", ["p1"])    # unchanged
        rec.record_selection(2.0, "a", "c", [])        # all gone
        assert rec.churn_counts() == {"a->c": 1}

    def test_revocation_rows(self):
        rec = PathSeriesRecorder()
        rec.record_revocation(3.0, "71-1#9", src="71-100", detail="accepted")
        (sample,) = rec.samples
        assert sample.event == "revocation"
        assert sample.fingerprint == "71-1#9"
        assert sample.ok is False

    def test_bounded_keeps_head_and_counts_drops(self):
        rec = PathSeriesRecorder(max_samples=3)
        for i in range(5):
            rec.record_probe(float(i), "a", "b", f"fp{i}", 0.01, True)
        assert len(rec.samples) == 3
        assert [s.fingerprint for s in rec.samples] == ["fp0", "fp1", "fp2"]
        assert rec.dropped == 2

    def test_csv_export_deterministic(self):
        def build():
            rec = PathSeriesRecorder()
            rec.record_probe(1.0, "a", "b", "fp", 0.0123456, True)
            rec.record_selection(2.0, "a", "b", ["fp"])
            rec.record_selection(3.0, "a", "b", ["fp2"])
            rec.record_revocation(4.0, "x#1", src="a")
            return rec.to_csv()

        first, second = build(), build()
        assert first == second
        header, *rows = first.strip().split("\n")
        assert header == "time_s,src,dst,fingerprint,event,rtt_ms,ok,detail"
        assert rows[0] == "1.000000,a,b,fp,probe,12.346,1,"

    def test_json_export_schema(self):
        rec = PathSeriesRecorder()
        rec.record_probe(1.0, "a", "b", "fp", 0.01, True)
        doc = json.loads(rec.to_json())
        assert doc["schema"] == 1
        assert doc["dropped"] == 0
        assert doc["samples"][0]["event"] == "probe"

    def test_clear(self):
        rec = PathSeriesRecorder()
        rec.record_selection(1.0, "a", "b", ["p1"])
        rec.record_selection(2.0, "a", "b", ["p2"])
        rec.clear()
        assert rec.samples == []
        rec.record_selection(3.0, "a", "b", ["p3"])
        assert rec.samples == []            # baseline reset too


class TestEndhostWiring:
    def _world(self):
        tel = Telemetry()
        recorder = PathSeriesRecorder().attach(tel)
        net = ScionNetwork(make_diamond_topology(), seed=7)
        registry = HostRegistry()
        daemon = Daemon(net, A, telemetry=tel, revocation_verifier=None)
        host_a = ScionHost(net, A, "10.0.1.10", registry, daemon=daemon)
        host_b = ScionHost(net, B, "10.0.2.20", registry,
                           daemon=Daemon(net, B))
        return tel, recorder, net, host_a, host_b

    def test_sends_record_probe_samples(self):
        tel, recorder, net, host_a, host_b = self._world()
        ctx_a, ctx_b = PanContext(host_a), PanContext(host_b)
        ctx_b.open_socket(8080).on_message(lambda p, s, pa: b"ok")
        client = ctx_a.open_socket()
        result = client.send_to(HostAddr(B, host_b.ip, 8080), b"x")
        assert result.success
        probes = recorder.series_for(str(A), str(B))
        assert probes
        assert probes[0].ok is True
        assert probes[0].rtt_ms > 0
        assert probes[0].fingerprint == result.path.fingerprint

    def test_lookup_churn_after_interface_down(self):
        tel, recorder, net, host_a, _ = self._world()
        daemon = host_a.daemon
        paths = daemon.lookup(B, now=0.0)
        assert recorder.samples == []       # first selection: baseline
        victim = paths[0].interfaces[0]
        origin, ifid = victim.split("#")
        daemon.handle_scmp(interface_down(origin, int(ifid)), now=1.0)
        daemon.lookup(B, now=1.0)
        churn = [s for s in recorder.samples
                 if s.event == "path-disappeared"]
        assert churn
        assert all(s.src == str(A) and s.dst == str(B) for s in churn)

    def test_revocation_ingest_recorded(self):
        tel, recorder, net, host_a, _ = self._world()
        daemon = host_a.daemon
        daemon.lookup(B, now=0.0)
        revocation = Revocation(
            ia=IA.parse("71-2"), ifid=1, issued_at=1.0, ttl_s=30.0
        )
        daemon.handle_revocation(revocation, now=1.0)
        rows = [s for s in recorder.samples if s.event == "revocation"]
        assert len(rows) == 1
        assert rows[0].fingerprint == revocation.key
        assert rows[0].src == str(A)

    def test_no_recorder_means_no_samples_and_no_errors(self):
        net = ScionNetwork(make_diamond_topology(), seed=7)
        registry = HostRegistry()
        daemon = Daemon(net, A, telemetry=Telemetry())
        host_a = ScionHost(net, A, "10.0.1.10", registry, daemon=daemon)
        host_b = ScionHost(net, B, "10.0.2.20", registry,
                           daemon=Daemon(net, B))
        ctx_a, ctx_b = PanContext(host_a), PanContext(host_b)
        ctx_b.open_socket(8080).on_message(lambda p, s, pa: b"ok")
        result = ctx_a.open_socket().send_to(
            HostAddr(B, host_b.ip, 8080), b"x"
        )
        assert result.success
