"""End-to-end telemetry acceptance: the chaos scenario, fully observed.

One seeded chaos run (``telemetry_snapshot``) must export Prometheus text
with labelled router drop counters and lookup-latency quantiles, at least
one multi-layer trace with linked spans crossing the SCMP error and
revocation-ingest layers, and a health report naming the down link, the
down interface, and the quarantined segment.  Two runs with the same seed
must export byte-identical telemetry.
"""

import pytest

from repro.experiments.chaos_resilience import telemetry_snapshot
from repro.obs import validate_trace

SEED = 11


@pytest.fixture(scope="module")
def snapshot():
    return telemetry_snapshot(seed=SEED)


class TestTraceAcceptance:
    def test_failover_trace_crosses_layers(self, snapshot):
        spans = snapshot["trace_spans"]
        names = [s.name for s in spans]
        # The path lookup under link failure reaches the SCMP error path
        # and feeds the revocation back into the control plane.
        assert "scmp.error" in names
        assert "revocation.ingest" in names
        assert "daemon.lookup" in names
        assert len(spans) >= 3
        # All spans belong to one trace, linked into a single tree.
        assert len({s.trace_id for s in spans}) == 1
        assert sum(1 for s in spans if s.parent_id is None) == 1

    def test_trace_is_structurally_valid(self, snapshot):
        assert snapshot["trace_problems"] == []
        assert validate_trace(snapshot["trace_spans"]) == []

    def test_error_status_on_failed_probe(self, snapshot):
        statuses = {
            s.name: s.status for s in snapshot["trace_spans"]
        }
        assert statuses["scmp.error"] == "error"


class TestPrometheusAcceptance:
    def test_labelled_router_drop_counters(self, snapshot):
        text = snapshot["prometheus"]
        assert "# TYPE router_drops_total counter" in text
        drop_lines = [
            line for line in text.splitlines()
            if line.startswith("router_drops_total{")
        ]
        assert drop_lines
        assert all('as="' in line and 'reason="' in line
                   for line in drop_lines)

    def test_lookup_latency_quantiles(self, snapshot):
        text = snapshot["prometheus"]
        assert "# TYPE pathserver_lookup_latency_seconds summary" in text
        quantile_lines = [
            line for line in text.splitlines()
            if line.startswith("pathserver_lookup_latency_seconds{")
            and 'quantile="' in line
        ]
        assert quantile_lines
        # At least one AS observed real (non-zero) lookup latency.
        assert any(float(line.rsplit(" ", 1)[1]) > 0.0
                   for line in quantile_lines)


class TestHealthAcceptance:
    def test_report_names_the_failures(self, snapshot):
        health = snapshot["health"]
        assert not health.healthy
        assert "a-c2" in health.down_links
        assert any(health.down_interfaces.values())
        assert health.quarantined_segments >= 1
        assert health.active_revocations

    def test_rendered_report_reads_like_a_status_page(self, snapshot):
        text = snapshot["health_text"]
        assert "a-c2" in text
        assert "quarantined" in text


class TestTimelineAcceptance:
    def test_unified_timeline_spans_subsystems(self, snapshot):
        events = snapshot["events"]
        sources = {e.source for e in events}
        # Chaos faults, the revocation, supervisor lifecycle, and monitor
        # alerts land in one ordered log.
        assert {"chaos", "supervisor", "monitor", "revocation"} <= sources
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_monitor_loss_alert_is_critical(self, snapshot):
        losses = [e for e in snapshot["events"]
                  if e.kind == "connectivity-lost"]
        assert losses
        assert all(e.severity == "critical" for e in losses)


class TestDeterminism:
    def test_same_seed_exports_are_byte_identical(self, snapshot):
        again = telemetry_snapshot(seed=SEED)
        assert again["prometheus"] == snapshot["prometheus"]
        assert again["metrics_json"] == snapshot["metrics_json"]
        assert again["event_digest"] == snapshot["event_digest"]
        assert again["health_text"] == snapshot["health_text"]
