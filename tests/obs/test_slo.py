"""Tests for SLO objectives and the multi-window burn-rate engine.

The hypothesis property at the bottom is the load-bearing one: for a
random request stream, the engine's firing decisions must agree with an
independent reference implementation of the error-budget math (burn =
window bad-fraction / budget, fire iff BOTH windows exceed the
threshold).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    BurnWindow,
    EventLog,
    MetricsRegistry,
    Slo,
    SloEngine,
)
from repro.obs.metrics import Histogram
from repro.obs.slo import DEFAULT_WINDOWS, histogram_count_le


def _ratio_engine(windows=DEFAULT_WINDOWS, events=None):
    metrics = MetricsRegistry()
    total = metrics.counter("requests_total")
    bad = metrics.counter("requests_failed_total")
    slo = Slo(name="availability", objective=0.99, kind="ratio",
              metric="requests_total", bad_metric="requests_failed_total")
    engine = SloEngine(metrics, (slo,), windows=windows, events=events)
    return engine, total, bad


class TestSloValidation:
    def test_objective_bounds(self):
        with pytest.raises(ValueError, match="objective"):
            Slo("x", 1.0, "ratio", "a_total", bad_metric="b_total")
        with pytest.raises(ValueError, match="objective"):
            Slo("x", 0.0, "ratio", "a_total", bad_metric="b_total")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Slo("x", 0.9, "pancake", "a_total")

    def test_ratio_needs_bad_metric(self):
        with pytest.raises(ValueError, match="bad_metric"):
            Slo("x", 0.9, "ratio", "a_total")

    def test_error_budget(self):
        slo = Slo("x", 0.99, "gauge", "g", threshold=1.0)
        assert abs(slo.error_budget - 0.01) < 1e-12


class TestBurnMath:
    def test_all_good_no_burn(self):
        engine, total, _ = _ratio_engine()
        for t in range(10):
            total.inc(100)
            assert engine.sample(float(t)) == []
        assert engine.active_alerts() == []

    def test_total_outage_burns_at_inverse_budget(self):
        """100% failures with a 1% budget is a 100x burn — both default
        windows fire on the same sample."""
        engine, total, bad = _ratio_engine()
        started = []
        for t in range(1, 6):
            total.inc(100)
            bad.inc(100)
            started += engine.sample(float(t))
        labels = {(a.slo, a.window) for a in engine.active_alerts()}
        assert labels == {("availability", "4s/1s"),
                          ("availability", "12s/3s")}
        assert all(abs(a.burn_long - 100.0) < 1e-6 for a in started)

    def test_fire_requires_both_windows(self):
        """Old damage alone (long window) must not page once the short
        window is healthy again — the 'still happening' condition."""
        engine, total, bad = _ratio_engine(
            windows=(BurnWindow(long_s=8.0, short_s=1.0,
                                burn_threshold=5.0),),
        )
        # Outage for 2 samples, then fully healthy traffic.
        for t in range(1, 3):
            total.inc(100)
            bad.inc(100)
            engine.sample(float(t))
        assert engine.active_alerts()        # firing during the outage
        for t in range(3, 8):
            total.inc(1000)
            engine.sample(float(t))
        # Long window still remembers the outage; short window is clean.
        assert engine.active_alerts() == []

    def test_edge_triggered_events_and_clear(self):
        events = EventLog()
        engine, total, bad = _ratio_engine(
            windows=(BurnWindow(4.0, 1.0, 10.0, severity="critical"),),
            events=events,
        )
        for t in range(1, 4):
            total.inc(10)
            bad.inc(10)
            engine.sample(float(t))
        for t in range(4, 12):
            total.inc(1000)
            engine.sample(float(t))
        fired = [e for e in events.events if e.kind == "slo-burn-rate"]
        cleared = [e for e in events.events if e.kind == "slo-burn-clear"]
        assert len(fired) == 1               # deduplicated while firing
        assert len(cleared) == 1
        assert fired[0].severity == "critical"
        assert fired[0].target == "availability[4s/1s]"
        assert cleared[0].time_s > fired[0].time_s

    def test_no_events_log_still_tracks_active(self):
        engine, total, bad = _ratio_engine(events=None)
        total.inc(10)
        bad.inc(10)
        engine.sample(1.0)
        assert engine.describe_alerts()
        assert engine.status()["active"]


class TestLatencySlo:
    def test_histogram_count_le_matches_observations(self):
        hist = Histogram("lat_seconds")
        for v in (0.001, 0.002, 0.010, 0.100, 0.200):
            hist.observe(v)
        assert histogram_count_le(hist, 0.050) == 3
        assert histogram_count_le(hist, 1.0) == 5
        assert histogram_count_le(hist, -1.0) == 0

    def test_latency_burn_fires_on_slow_tail(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("lookup_seconds", labels={"as": "71-100"})
        slo = Slo("latency", 0.9, "latency", "lookup_seconds",
                  threshold=0.050)
        engine = SloEngine(metrics, (slo,))
        for t in range(1, 6):
            for _ in range(5):
                hist.observe(0.500)          # every lookup blows the bound
            engine.sample(float(t))
        assert engine.active_alerts()

    def test_latency_sums_label_children(self):
        metrics = MetricsRegistry()
        fast = metrics.histogram("lookup_seconds", labels={"as": "71-100"})
        slow = metrics.histogram("lookup_seconds", labels={"as": "71-200"})
        slo = Slo("latency", 0.9, "latency", "lookup_seconds",
                  threshold=0.050)
        engine = SloEngine(metrics, (slo,))
        fast.observe(0.001)
        slow.observe(9.0)
        engine.sample(1.0)
        good, total = engine._snapshot(slo)
        assert (good, total) == (1.0, 2.0)


class TestGaugeSlo:
    def test_gauge_floor(self):
        metrics = MetricsRegistry()
        gauge = metrics.gauge("goodput_fraction")
        slo = Slo("goodput", 0.5, "gauge", "goodput_fraction",
                  threshold=0.9)
        engine = SloEngine(
            metrics, (slo,),
            windows=(BurnWindow(4.0, 1.0, 1.5),),
        )
        gauge.set(1.0)
        engine.sample(1.0)
        assert engine.active_alerts() == []
        for t in range(2, 6):
            gauge.set(0.1)                   # below the floor: all bad
            engine.sample(float(t))
        assert engine.active_alerts()


# -- the reference-model property ---------------------------------------------


def _reference_burn(history, now, window_s, budget):
    """Independent burn-rate: bad fraction across the trailing window,
    divided by the error budget.  ``history`` is [(t, good, total), ...]
    cumulative; the window baseline is the newest entry at or before the
    cutoff (zeros when none — everything counts at startup)."""
    good0 = total0 = 0.0
    for t, good, total in history:
        if t <= now - window_s:
            good0, total0 = good, total
    good1, total1 = history[-1][1], history[-1][2]
    d_total = total1 - total0
    if d_total <= 0:
        return 0.0
    return ((d_total - (good1 - good0)) / d_total) / budget


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
        min_size=1, max_size=30,
    )
)
def test_alerts_fire_iff_budget_math_says_so(stream):
    """For any (good, bad) increment stream sampled at 1s cadence, the
    engine's firing set equals the reference error-budget decision at
    every step."""
    window = BurnWindow(long_s=5.0, short_s=2.0, burn_threshold=3.0)
    engine, total, bad = _ratio_engine(windows=(window,))
    slo = engine.slos[0]
    history = []
    cumulative_good = cumulative_total = 0.0
    for step, (good_inc, bad_inc) in enumerate(stream):
        now = float(step + 1)
        total.inc(good_inc + bad_inc)
        bad.inc(bad_inc)
        cumulative_good += good_inc
        cumulative_total += good_inc + bad_inc
        history.append((now, cumulative_good, cumulative_total))
        engine.sample(now)
        burn_long = _reference_burn(
            history, now, window.long_s, slo.error_budget
        )
        burn_short = _reference_burn(
            history, now, window.short_s, slo.error_budget
        )
        should_fire = (burn_long > window.burn_threshold
                       and burn_short > window.burn_threshold)
        is_firing = bool(engine.active_alerts())
        assert is_firing == should_fire, (
            f"step {step}: engine={is_firing} reference={should_fire} "
            f"(burn {burn_long:.2f}/{burn_short:.2f})"
        )


class TestHealthAnnotation:
    def test_health_report_carries_active_alerts(self):
        from repro.obs import build_health_report
        from repro.scion.network import ScionNetwork
        from tests.conftest import make_diamond_topology

        engine, total, bad = _ratio_engine()
        total.inc(10)
        bad.inc(10)
        engine.sample(1.0)
        network = ScionNetwork(make_diamond_topology(), seed=7)
        report = build_health_report(network, now=1.0, slo=engine)
        assert report.slo_alerts == engine.describe_alerts()
        assert "SLO burn-rate alerts" in report.render()
        assert json.loads(report.to_json())["slo_alerts"]

    def test_health_report_without_engine_has_no_annotation(self):
        from repro.obs import build_health_report
        from repro.scion.network import ScionNetwork
        from tests.conftest import make_diamond_topology

        network = ScionNetwork(make_diamond_topology(), seed=7)
        report = build_health_report(network, now=1.0)
        assert report.slo_alerts == []
        assert "SLO burn-rate" not in report.render()
