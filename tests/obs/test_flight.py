"""Tests for the crash flight recorder: bounded rings, hook chaining,
supervisor triggers, and byte-identical dumps across same-seed runs."""

import json

from repro.core.supervisor import Supervisor
from repro.netsim.crucible import generate_schedule, run_schedule
from repro.obs import (
    FlightRecorder,
    Telemetry,
    flight_digest,
    save_flight,
)
from repro.scion.network import ScionNetwork
from tests.conftest import make_diamond_topology


def _attached(capacity=8):
    tel = Telemetry()
    return FlightRecorder(capacity=capacity).attach(tel), tel


class TestRings:
    def test_event_ring_bounded_keeps_most_recent(self):
        flight, tel = _attached(capacity=8)
        for i in range(20):
            tel.events.record(float(i), "test", "tick", target=str(i))
        artifact = flight.dump("test", now=20.0)
        events = artifact["events"]
        assert len(events) == 8
        assert [e["target"] for e in events] == [
            str(i) for i in range(12, 20)
        ]

    def test_metric_delta_ring(self):
        flight, tel = _attached(capacity=4)
        counter = tel.metrics.counter("widgets_total", labels={"kind": "a"})
        gauge = tel.metrics.gauge("depth")
        for i in range(6):
            counter.inc(i + 1)
            gauge.set(float(i))              # gauges are skipped in deltas
            flight.tick(now=float(i))
        artifact = flight.dump("test", now=6.0)
        deltas = artifact["metric_deltas"]
        assert len(deltas) == 4              # ring capacity
        assert deltas[-1]["deltas"] == {'widgets_total{kind=a}': 6.0}
        assert all("depth" not in d["deltas"] for d in deltas)

    def test_tick_without_changes_records_nothing(self):
        flight, tel = _attached()
        tel.metrics.counter("quiet_total")
        flight.tick(1.0)
        flight.tick(2.0)
        assert flight.dump("test", 2.0)["metric_deltas"] == []

    def test_triggers_unbounded(self):
        flight, _ = _attached(capacity=2)
        for i in range(10):
            flight.trigger(float(i), "invariant", f"inv-{i}")
        assert len(flight.dump("test", 10.0)["triggers"]) == 10

    def test_clear(self):
        flight, tel = _attached()
        tel.events.record(1.0, "test", "tick")
        flight.trigger(1.0, "test", "boom")
        flight.clear()
        artifact = flight.dump("test", 2.0)
        assert artifact["events"] == []
        assert artifact["triggers"] == []


class TestWiring:
    def test_attach_sets_bundle_attribute(self):
        flight, tel = _attached()
        assert tel.flight is flight
        assert flight.telemetry is tel

    def test_on_record_hook_chains_previous_subscriber(self):
        tel = Telemetry()
        seen = []
        tel.events.on_record = seen.append
        flight = FlightRecorder().attach(tel)
        event = tel.events.record(1.0, "test", "tick")
        assert seen == [event]
        assert flight.dump("t", 1.0)["events"][0]["kind"] == "tick"

    def test_supervisor_crash_and_detection_trigger(self):
        tel = Telemetry()
        flight = FlightRecorder().attach(tel)
        network = ScionNetwork(make_diamond_topology(), seed=3, telemetry=tel)
        supervisor = Supervisor(network, telemetry=tel)
        supervisor.crash("control", now=1.0)
        supervisor.tick(now=1.5)
        kinds = [(t["kind"], t["detail"])
                 for t in flight.dump("crash", 2.0)["triggers"]]
        assert ("service-crash", "control") in kinds
        assert ("crash-detected", "control") in kinds

    def test_supervisor_without_flight_unaffected(self):
        network = ScionNetwork(make_diamond_topology(), seed=3,
                               telemetry=Telemetry())
        supervisor = Supervisor(network)
        supervisor.crash("control", now=1.0)
        supervisor.tick(now=1.5)
        assert supervisor.stats.crashes == 1


class TestDumps:
    def test_digest_covers_body_not_itself(self):
        flight, tel = _attached()
        tel.events.record(1.0, "test", "tick")
        artifact = flight.dump("test", 1.0)
        assert artifact["digest"] == flight_digest(artifact)
        mutated = dict(artifact, reason="other")
        assert flight_digest(mutated) != artifact["digest"]

    def test_save_flight_roundtrip(self, tmp_path):
        flight, tel = _attached()
        tel.events.record(1.0, "test", "tick")
        artifact = flight.dump("test", 1.0)
        path = tmp_path / "flight.json"
        save_flight(path, artifact)
        loaded = json.loads(path.read_text())
        assert loaded == artifact
        assert flight_digest(loaded) == loaded["digest"]

    def test_context_included(self):
        flight, _ = _attached()
        artifact = flight.dump("test", 1.0, context={"bug": "shed-critical"})
        assert artifact["context"] == {"bug": "shed-critical"}


class TestCrucibleDeterminism:
    def test_same_seed_runs_dump_byte_identical_black_boxes(self):
        artifacts = []
        for _ in range(2):
            schedule = generate_schedule(
                seed=11, topology="mesh5", n_faults=6,
                ensure_kind="load-surge",
            )
            result = run_schedule(
                schedule, bug="shed-critical",
                flight=FlightRecorder(capacity=64),
            )
            assert result.flight_artifact is not None
            artifacts.append(result.flight_artifact)
        first = json.dumps(artifacts[0], sort_keys=True)
        second = json.dumps(artifacts[1], sort_keys=True)
        assert first == second
        assert artifacts[0]["digest"] == artifacts[1]["digest"]

    def test_clean_run_dumps_nothing(self):
        schedule = generate_schedule(seed=11, topology="mesh5", n_faults=4)
        result = run_schedule(schedule, flight=FlightRecorder())
        assert result.ok
        assert result.flight_artifact is None

    def test_violation_context_names_invariants(self):
        schedule = generate_schedule(
            seed=11, topology="mesh5", n_faults=6, ensure_kind="load-surge"
        )
        result = run_schedule(
            schedule, bug="shed-critical", flight=FlightRecorder()
        )
        context = result.flight_artifact["context"]
        assert context["bug"] == "shed-critical"
        assert "codel-spares-critical" in context["violated"]
        assert context["fault_digest"] == result.fault_digest
        assert context["schedule_digest"] == schedule.digest()
