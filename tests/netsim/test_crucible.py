"""The crucible DST harness: schedules, invariants, runs, artifacts."""

import json
from types import SimpleNamespace

import pytest

from repro.netsim.crucible import (
    FAULT_KINDS,
    CrucibleError,
    FaultSpec,
    Schedule,
    generate_schedule,
    load_artifact,
    replay_artifact,
    run_schedule,
    save_artifact,
    shrink_schedule,
)
from repro.netsim.invariants import (
    InvariantChecker,
    check_no_forwarding_loops,
    standard_invariants,
)


class TestSchedules:
    def test_generation_is_deterministic_per_seed(self):
        a = generate_schedule(seed=5, topology="mesh5")
        b = generate_schedule(seed=5, topology="mesh5")
        c = generate_schedule(seed=6, topology="mesh5")
        assert a == b
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_topology_changes_the_stream(self):
        a = generate_schedule(seed=5, topology="mesh5")
        b = generate_schedule(seed=5, topology="rand64")
        assert a.faults != b.faults

    def test_faults_heal_before_settle_window(self):
        for seed in range(20):
            schedule = generate_schedule(seed=seed, n_faults=6)
            for spec in schedule.faults:
                assert spec.end_s <= 0.85 * schedule.duration_s + 1e-9

    def test_roundtrip_through_dict(self):
        schedule = generate_schedule(seed=9, n_faults=5)
        clone = Schedule.from_dict(
            json.loads(json.dumps(schedule.to_dict()))
        )
        assert clone == schedule
        assert clone.digest() == schedule.digest()

    def test_ensure_kind_forces_presence(self):
        schedule = generate_schedule(
            seed=1, n_faults=3, ensure_kind="partition"
        )
        assert any(s.kind == "partition" for s in schedule.faults)

    def test_invalid_specs_rejected(self):
        with pytest.raises(CrucibleError):
            FaultSpec(kind="meteor-strike", start_s=0.0, end_s=1.0)
        with pytest.raises(CrucibleError):
            FaultSpec(kind="link-outage", start_s=2.0, end_s=1.0)
        with pytest.raises(CrucibleError):
            generate_schedule(seed=0, n_faults=0)


class TestInvariantChecker:
    def test_duplicate_names_rejected(self):
        invariants = standard_invariants()
        with pytest.raises(ValueError):
            InvariantChecker(list(invariants) + [invariants[0]])

    def test_scoreboard_includes_zeros(self):
        checker = InvariantChecker(standard_invariants())
        board = checker.scoreboard()
        assert board
        assert all(count == 0 for count in board.values())


def _fake_path(records):
    plan = tuple(
        SimpleNamespace(hop=SimpleNamespace(ia=ia), ingress=ing, egress=eg)
        for ia, ing, eg in records
    )
    return SimpleNamespace(forwarding_plan=lambda: plan)


def _fake_world(records):
    meta = SimpleNamespace(path=_fake_path(records), stale=False)
    return SimpleNamespace(
        served=[SimpleNamespace(src="a", dst="b", meta=meta)]
    )


class TestForwardingLoopInvariant:
    """The loop check must accept legal SCION shapes (shortcut joins,
    one up-then-down hairpin through the source AS) and still catch
    genuine repeated traversals."""

    def test_shortcut_join_with_repeated_interface_is_legal(self):
        world = _fake_world([
            ("71-101", 0, 1),   # up-segment record at the cut AS
            ("71-101", 1, 3),   # down-segment record, same oriented iface
            ("71-105", 1, 0),
        ])
        assert check_no_forwarding_loops(world, 0.0) is None

    def test_hairpin_through_core_is_legal(self):
        world = _fake_world([
            ("71-101", 0, 1),
            ("71-4", 4, 0), ("71-4", 0, 4),
            ("71-101", 1, 3),   # re-enters the source AS once: allowed
            ("71-105", 1, 0),
        ])
        assert check_no_forwarding_loops(world, 0.0) is None

    def test_repeated_crossing_is_a_loop(self):
        world = _fake_world([
            ("71-1", 0, 1), ("71-2", 1, 2),
            ("71-1", 2, 1), ("71-2", 1, 0),  # same 71-1#1 -> 71-2#1 again
        ])
        detail = check_no_forwarding_loops(world, 0.0)
        assert detail is not None and "twice" in detail

    def test_third_reentry_is_a_loop(self):
        world = _fake_world([
            ("71-1", 0, 1), ("71-2", 1, 2), ("71-1", 2, 3),
            ("71-3", 1, 2), ("71-1", 4, 5), ("71-9", 1, 0),
        ])
        detail = check_no_forwarding_loops(world, 0.0)
        assert detail is not None and "enters 71-1" in detail


class TestRunAndShrink:
    def test_healthy_run_is_green_and_deterministic(self):
        schedule = generate_schedule(seed=3, topology="mesh5", n_faults=4)
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.ok, [str(v) for v in first.violations]
        assert first.fault_digest == second.fault_digest
        assert first.checks_run == second.checks_run

    def test_injected_bug_caught_shrunk_and_replayed(self, tmp_path):
        schedule = generate_schedule(
            seed=11, topology="mesh5", n_faults=6,
            ensure_kind="load-surge",
        )
        caught = run_schedule(schedule, bug="shed-critical")
        assert not caught.ok
        assert "codel-spares-critical" in caught.violated_names()

        shrink = shrink_schedule(
            schedule, bug="shed-critical",
            target=tuple(caught.violated_names()),
        )
        assert shrink.shrunk_faults <= 5
        assert shrink.shrunk_faults <= shrink.original_faults
        minimal = run_schedule(shrink.schedule, bug="shed-critical")
        assert set(minimal.violated_names()) & set(shrink.target)

        artifact = str(tmp_path / "repro.json")
        save_artifact(artifact, minimal, shrink)
        payload = load_artifact(artifact)
        assert payload["schedule_digest"] == shrink.schedule.digest()
        replayed, exact = replay_artifact(artifact)
        assert exact
        assert replayed.fault_digest == minimal.fault_digest

    def test_shrink_requires_a_violation(self):
        schedule = generate_schedule(seed=3, topology="mesh5", n_faults=2)
        with pytest.raises(CrucibleError):
            shrink_schedule(schedule)  # healthy: nothing to shrink

    def test_every_fault_kind_applies_cleanly(self):
        """One schedule per kind: the apply/heal plumbing for each fault
        type works in isolation (regression net for target resolution)."""
        for kind in FAULT_KINDS:
            schedule = generate_schedule(
                seed=17, topology="mesh5", n_faults=1, kinds=(kind,)
            )
            result = run_schedule(schedule)
            assert result.ok, (
                kind, [str(v) for v in result.violations]
            )
