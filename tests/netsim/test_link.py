"""Tests for the point-to-point link model."""

import pytest

from repro.netsim.link import Link
from repro.netsim.simulator import Simulator


def make_link(**kwargs):
    defaults = dict(name="l", a="A", b="B", latency_s=0.010)
    defaults.update(kwargs)
    return Link(**defaults)


def test_transmit_delivers_after_latency():
    sim = Simulator()
    link = make_link()
    delivered = []
    link.transmit(sim, "A", 100, deliver=lambda: delivered.append(sim.now))
    sim.run_until_idle()
    assert delivered == [pytest.approx(0.010)]


def test_serialization_delay_with_bandwidth():
    sim = Simulator()
    link = make_link(bandwidth_bps=8_000)  # 1000 bytes/s
    delivered = []
    link.transmit(sim, "A", 500, deliver=lambda: delivered.append(sim.now))
    sim.run_until_idle()
    # 500 bytes at 1000 B/s = 0.5 s serialization + 10 ms propagation.
    assert delivered == [pytest.approx(0.510)]


def test_frames_queue_behind_transmitter():
    sim = Simulator()
    link = make_link(bandwidth_bps=8_000)
    times = []
    for _ in range(3):
        link.transmit(sim, "A", 500, deliver=lambda: times.append(sim.now))
    sim.run_until_idle()
    assert times == [pytest.approx(0.51), pytest.approx(1.01), pytest.approx(1.51)]


def test_directions_have_independent_capacity():
    sim = Simulator()
    link = make_link(bandwidth_bps=8_000)
    times = {}
    link.transmit(sim, "A", 500, deliver=lambda: times.setdefault("ab", sim.now))
    link.transmit(sim, "B", 500, deliver=lambda: times.setdefault("ba", sim.now))
    sim.run_until_idle()
    assert times["ab"] == pytest.approx(0.51)
    assert times["ba"] == pytest.approx(0.51)


def test_down_link_drops():
    sim = Simulator()
    link = make_link()
    link.set_up(False)
    drops = []
    link.transmit(sim, "A", 10, deliver=lambda: pytest.fail("delivered"),
                  drop=drops.append)
    sim.run_until_idle()
    assert drops == ["link-down"]
    assert link.stats.frames_dropped_down == 1


def test_frame_in_flight_lost_when_link_goes_down():
    sim = Simulator()
    link = make_link(latency_s=1.0)
    drops = []
    link.transmit(sim, "A", 10, deliver=lambda: pytest.fail("delivered"),
                  drop=drops.append)
    sim.schedule(0.5, link.set_up, False)
    sim.run_until_idle()
    assert drops == ["link-down"]


def test_lossy_link_drops_deterministically_with_seed():
    import random

    sim = Simulator()
    link = make_link(loss=0.5, rng=random.Random(42))
    outcomes = []
    for _ in range(50):
        link.transmit(sim, "A", 10, deliver=lambda: outcomes.append("ok"),
                      drop=lambda r: outcomes.append(r))
    sim.run_until_idle()
    assert outcomes.count("loss") == link.stats.frames_dropped_loss
    assert 0 < outcomes.count("loss") < 50


def test_other_endpoint():
    link = make_link()
    assert link.other("A") == "B"
    assert link.other("B") == "A"
    with pytest.raises(ValueError):
        link.other("C")


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        make_link(latency_s=-1)
    with pytest.raises(ValueError):
        make_link(loss=1.0)
    sim = Simulator()
    with pytest.raises(ValueError):
        make_link().transmit(sim, "X", 1, deliver=lambda: None)


def test_stats_accumulate():
    sim = Simulator()
    link = make_link()
    for _ in range(3):
        link.transmit(sim, "A", 100, deliver=lambda: None)
    sim.run_until_idle()
    assert link.stats.frames_sent == 3
    assert link.stats.bytes_sent == 300
