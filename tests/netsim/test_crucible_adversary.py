"""Adversarial faults inside the crucible: composite schedules that mix
benign chaos with Byzantine attacks, the trust-revocations regression the
security invariants must catch, and ddmin shrinking down to a minimal
attack reproducer that replays exactly.
"""

import os

import pytest

from repro.netsim.crucible import (
    ADVERSARY_KINDS,
    FAULT_KINDS,
    CrucibleError,
    FaultSpec,
    generate_adversarial_schedule,
    generate_schedule,
    replay_artifact,
    run_schedule,
    save_artifact,
    shrink_schedule,
)


class TestAdversarialSchedules:
    def test_generator_is_deterministic(self):
        assert (
            generate_adversarial_schedule(5).digest()
            == generate_adversarial_schedule(5).digest()
        )

    def test_always_contains_an_adversarial_fault(self):
        for seed in range(10):
            schedule = generate_adversarial_schedule(seed)
            assert any(
                spec.kind in ADVERSARY_KINDS for spec in schedule.faults
            ), f"seed {seed} drew no adversarial fault"

    def test_adversarial_kinds_validate(self):
        for kind in ADVERSARY_KINDS:
            FaultSpec(kind=kind, start_s=1.0, end_s=2.0)
        with pytest.raises(CrucibleError):
            FaultSpec(kind="adv-nonsense", start_s=1.0, end_s=2.0)

    def test_legacy_generator_untouched(self):
        # The adversary must not shift any legacy seeded schedule: the
        # default kind pool excludes adversarial kinds, and this pinned
        # digest is from before the adversary existed.
        assert not set(ADVERSARY_KINDS) & set(FAULT_KINDS)
        assert generate_schedule(7).digest() == "aaaeb943026c9d65"


class TestHardenedWorldUnderAttack:
    def test_composite_attack_schedule_is_all_green(self):
        schedule = generate_adversarial_schedule(0)
        result = run_schedule(schedule)
        assert result.ok, result.violated_names()
        # Security invariants actually ran (they are in the scoreboard).
        assert "security-forged-revocation-rejected" in result.scoreboard

    def test_revocation_attacks_compose_with_chaos(self):
        # Seed 4 draws revocation replays alongside surges and outages;
        # the hardened world must stay green through the composition.
        schedule = generate_adversarial_schedule(4)
        assert any(
            spec.kind in ADVERSARY_KINDS for spec in schedule.faults
        )
        result = run_schedule(schedule)
        assert result.ok, result.violated_names()


class TestTrustRevocationsRegression:
    def test_bug_is_caught_shrunk_and_replayed(self, tmp_path):
        schedule = generate_adversarial_schedule(
            4, n_faults=5, ensure_kind="adv-forge-revocation"
        )
        caught = run_schedule(schedule, bug="trust-revocations")
        assert not caught.ok
        violated = set(caught.violated_names())
        assert violated & {
            "security-forged-revocation-rejected",
            "security-replayed-revocation-ignored",
        }
        shrink = shrink_schedule(
            schedule, bug="trust-revocations",
            target=tuple(caught.violated_names()),
        )
        assert shrink.shrunk_faults <= 2
        assert all(
            spec.kind in ADVERSARY_KINDS
            for spec in shrink.schedule.faults
        ), "minimal reproducer should be pure attack"
        minimal = run_schedule(shrink.schedule, bug="trust-revocations")
        artifact = os.path.join(str(tmp_path), "attack_repro.json")
        save_artifact(artifact, minimal, shrink)
        _, exact = replay_artifact(artifact)
        assert exact

    def test_hardened_world_shrugs_off_same_schedule(self):
        schedule = generate_adversarial_schedule(
            4, n_faults=5, ensure_kind="adv-forge-revocation"
        )
        assert run_schedule(schedule).ok
