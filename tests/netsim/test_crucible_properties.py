"""Property tests for the crucible's contracts.

Two bundles of properties from the issue:

* **Shrinker** — the ddmin result is a subsequence of the original fault
  list, still violates the same target invariant, and replays
  deterministically (same fault-stream digest, same violations).
* **Partition semantics** — a symmetric cut delivers nothing in either
  direction across the cut while it holds, and healing restores
  reconvergence (probes succeed again) with no lingering dataplane state.

Runs are real end-to-end simulations (~0.2 s each on the mesh5 world),
so ``max_examples`` is deliberately small; the seeds still move every
generation knob the schedule generator has.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netsim.chaos import FaultInjector
from repro.netsim.crucible import (
    TOPOLOGIES,
    generate_schedule,
    run_schedule,
    shrink_schedule,
)
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork

LEAVES = (IA(71, 100), IA(71, 200), IA(71, 300))

SLOW = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _subsequence(shorter, longer) -> bool:
    it = iter(longer)
    return all(item in it for item in shorter)


class TestShrinkerProperties:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_shrunk_is_violating_subsequence_and_replays(self, seed):
        schedule = generate_schedule(
            seed=seed, topology="mesh5", n_faults=5,
            ensure_kind="load-surge",
        )
        caught = run_schedule(schedule, bug="shed-critical")
        if caught.ok:
            # Not every surge sheds priority-0 work; the property is
            # about schedules the bug actually fires on.
            return
        shrink = shrink_schedule(
            schedule, bug="shed-critical",
            target=tuple(caught.violated_names()),
        )
        # 1. Subsequence: order preserved, nothing new, nothing mutated.
        assert _subsequence(shrink.schedule.faults, schedule.faults)
        assert shrink.shrunk_faults == len(shrink.schedule.faults)
        # 2. Still violates the same target invariant.
        minimal = run_schedule(shrink.schedule, bug="shed-critical")
        assert set(minimal.violated_names()) & set(shrink.target)
        # 3. Deterministic replay from the seed alone.
        replay = run_schedule(shrink.schedule, bug="shed-critical")
        assert replay.fault_digest == minimal.fault_digest
        assert replay.violated_names() == minimal.violated_names()
        assert [str(v) for v in replay.violations] == [
            str(v) for v in minimal.violations
        ]


class TestPartitionProperties:
    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        cut=st.sampled_from(LEAVES),
        observer=st.sampled_from(LEAVES),
    )
    def test_symmetric_cut_then_heal_reconverges(self, seed, cut, observer):
        if cut == observer:
            return
        network = ScionNetwork(
            TOPOLOGIES["mesh5"](seed), seed=seed, verify_beacons=False
        )
        injector = FaultInjector(seed=seed)
        now = float(network.timestamp)

        def delivered(src, dst, t):
            return any(
                network.dataplane.probe(meta.path, t).success
                for meta in network.paths(src, dst, now=t)
            )

        assert delivered(observer, cut, now)
        partition = injector.partition(
            network.topology, [cut], now, mode="symmetric"
        )
        # No delivery in either direction while the cut holds.
        assert not delivered(observer, cut, now + 0.1)
        assert not delivered(cut, observer, now + 0.1)
        partition.heal(now + 0.2)
        # Heal => reconvergence, instantly (no SCMP ever circulated), and
        # no partition state left for the dataplane to pay for.
        assert delivered(observer, cut, now + 0.3)
        assert delivered(cut, observer, now + 0.3)
        assert not network.topology.partitioned_links
        for link in network.topology.links.values():
            assert not link.blocked_senders
