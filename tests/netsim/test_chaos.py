"""Tests for the chaos layer: fault injection on links, probes, servers."""

import dataclasses

import pytest

from repro.netsim.chaos import (
    Arrival,
    ChaosError,
    FaultEvent,
    FaultInjector,
    FaultProfile,
    LoadSurge,
    ServerOutage,
)
from repro.netsim.failures import FailureSchedule, LinkEvent
from repro.netsim.link import Link
from repro.netsim.simulator import Simulator


@dataclasses.dataclass(frozen=True)
class FakeProbeResult:
    success: bool
    rtt_s: float = 0.0
    one_way_s: float = 0.0
    failure: str = ""


class FakeServer:
    ip = "10.0.0.1"
    port = 8041
    processing_s = 0.002

    def __init__(self):
        self.topology_calls = 0
        self.trc_calls = 0

    def get_topology(self):
        self.topology_calls += 1
        return "topology"

    def get_trcs(self):
        self.trc_calls += 1
        return ["trc"]


def deliver_counter():
    state = {"count": 0}

    def deliver():
        state["count"] += 1

    return state, deliver


class TestFaultProfile:
    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ChaosError):
            FaultProfile(loss=1.0)
        with pytest.raises(ChaosError):
            FaultProfile(outage=-0.1)
        with pytest.raises(ChaosError):
            FaultProfile(latency_spike_s=-1.0)

    def test_defaults_inject_nothing(self):
        profile = FaultProfile()
        assert (profile.loss, profile.duplicate, profile.corrupt,
                profile.outage) == (0.0, 0.0, 0.0, 0.0)


class TestLinkWrapping:
    def run_frames(self, profile, n=400, seed=1):
        sim = Simulator()
        link = Link("l", "x", "y", latency_s=0.01)
        injector = FaultInjector(seed=seed)
        restore = injector.wrap_link(link, profile)
        state, deliver = deliver_counter()
        for _ in range(n):
            link.transmit(sim, "x", 100, deliver)
        sim.run()
        return injector, link, state, restore

    def test_loss_drops_frames(self):
        injector, link, state, _ = self.run_frames(FaultProfile(loss=0.3))
        losses = sum(1 for e in injector.events if e.kind == "loss")
        assert losses > 0
        assert state["count"] == 400 - losses
        assert link.stats.frames_dropped_loss == losses

    def test_corrupt_drops_frames(self):
        injector, link, state, _ = self.run_frames(FaultProfile(corrupt=0.3))
        corrupted = sum(1 for e in injector.events if e.kind == "corrupt")
        assert corrupted > 0
        assert state["count"] == 400 - corrupted

    def test_duplicate_delivers_twice(self):
        injector, link, state, _ = self.run_frames(FaultProfile(duplicate=0.3))
        dupes = sum(1 for e in injector.events if e.kind == "duplicate")
        assert dupes > 0
        assert state["count"] == 400 + dupes

    def test_latency_spike_delays_delivery(self):
        sim = Simulator()
        link = Link("l", "x", "y", latency_s=0.01)
        injector = FaultInjector(seed=3)
        # Always spike, so the single frame must arrive late.
        injector.wrap_link(
            link, FaultProfile(latency_spike=0.99, latency_spike_s=0.5)
        )
        arrivals = []
        link.transmit(sim, "x", 100, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.51)]
        assert link.latency_s == 0.01  # restored after the frame

    def test_restore_removes_wrapper(self):
        injector, link, state, restore = self.run_frames(FaultProfile(loss=0.5))
        restore()
        before = len(injector.events)
        sim = Simulator()
        for _ in range(100):
            link.transmit(sim, "x", 100, lambda: None)
        sim.run()
        assert len(injector.events) == before

    def test_same_seed_same_fault_stream(self):
        a, _, _, _ = self.run_frames(FaultProfile(loss=0.2, duplicate=0.1), seed=9)
        b, _, _, _ = self.run_frames(FaultProfile(loss=0.2, duplicate=0.1), seed=9)
        assert a.events == b.events
        assert a.event_digest() == b.event_digest()

    def test_different_seed_different_stream(self):
        profile = FaultProfile(loss=0.3, duplicate=0.3)
        a, _, _, _ = self.run_frames(profile, seed=1)
        b, _, _, _ = self.run_frames(profile, seed=2)
        assert [e.kind for e in a.events] != [e.kind for e in b.events]


class TestProbeFilter:
    def test_loss_fails_probe(self):
        injector = FaultInjector(seed=4)
        apply = injector.probe_filter(FaultProfile(loss=0.99), "path")
        result = apply(FakeProbeResult(True, rtt_s=0.1, one_way_s=0.05), 1.0)
        assert not result.success
        assert result.failure == "chaos-loss"

    def test_spike_inflates_latency(self):
        injector = FaultInjector(seed=4)
        apply = injector.probe_filter(
            FaultProfile(latency_spike=0.99, latency_spike_s=0.2), "path"
        )
        result = apply(FakeProbeResult(True, rtt_s=0.1, one_way_s=0.05), 1.0)
        assert result.success
        assert result.rtt_s == pytest.approx(0.5)
        assert result.one_way_s == pytest.approx(0.25)

    def test_failed_probe_passes_through(self):
        injector = FaultInjector(seed=4)
        apply = injector.probe_filter(FaultProfile(loss=0.99), "path")
        original = FakeProbeResult(False, failure="link-down")
        assert apply(original, 1.0) is original
        assert injector.events == []

    def test_wrap_dataplane_restores(self):
        class FakeDataplane:
            def probe(self, path, now):
                return FakeProbeResult(True, rtt_s=0.1, one_way_s=0.05)

        dataplane = FakeDataplane()
        injector = FaultInjector(seed=4)
        restore = injector.wrap_dataplane(dataplane, FaultProfile(loss=0.99))
        assert not dataplane.probe("p", 0.0).success
        restore()
        assert dataplane.probe("p", 0.0).success


class TestFaultyServer:
    def test_transparent_when_healthy(self):
        injector = FaultInjector()
        proxy = injector.wrap_server(FakeServer(), FaultProfile(), name="s")
        assert proxy.get_topology() == "topology"
        assert proxy.get_trcs() == ["trc"]
        assert (proxy.ip, proxy.port, proxy.processing_s) == (
            "10.0.0.1", 8041, 0.002
        )
        assert proxy.refused_requests == 0

    def test_hard_outage_refuses_everything(self):
        injector = FaultInjector()
        server = FakeServer()
        proxy = injector.wrap_server(server, FaultProfile(), name="s")
        proxy.set_down(True, now=5.0)
        with pytest.raises(ServerOutage):
            proxy.get_topology()
        with pytest.raises(ServerOutage):
            proxy.get_trcs()
        assert server.topology_calls == 0
        assert proxy.refused_requests == 2
        proxy.set_down(False, now=6.0)
        assert proxy.get_topology() == "topology"
        kinds = [e.kind for e in injector.events]
        assert kinds == ["server-outage", "server-recovery"]

    def test_probabilistic_outage(self):
        injector = FaultInjector(seed=8)
        proxy = injector.wrap_server(
            FakeServer(), FaultProfile(outage=0.5), name="s"
        )
        outcomes = []
        for _ in range(200):
            try:
                proxy.get_topology()
                outcomes.append(True)
            except ServerOutage:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)
        assert proxy.refused_requests == outcomes.count(False)

    def test_outage_is_transient(self):
        assert ServerOutage.transient is True


class TestScheduleObservation:
    def test_schedule_flips_mirrored_into_stream(self):
        sim = Simulator()
        link = Link("wan", "x", "y", latency_s=0.01)
        schedule = FailureSchedule()
        schedule.add_cable_cut("wan", time_s=10.0, repair_s=20.0)
        injector = FaultInjector()
        injector.observe_schedule(schedule)
        schedule.install(sim, {"wan": link})
        sim.run()
        assert injector.events == [
            FaultEvent(10.0, "wan", "link-down", "cable-cut"),
            FaultEvent(20.0, "wan", "link-up", "repaired"),
        ]


class FakeCa:
    """CaService-shaped stub: issues opaque tokens and counts calls."""

    as_cert_lifetime_s = 3600.0
    latest = None
    issued = {}

    def __init__(self):
        self.issue_calls = 0

    def issue_as_certificate(self, subject_ia, public_key, now, lifetime_s=None):
        self.issue_calls += 1
        return ("cert", subject_ia, now)

    def renew(self, subject_ia, now):
        self.issue_calls += 1
        return ("cert", subject_ia, now)

    def needs_renewal(self, cert, now, renewal_fraction=None):
        return False

    def issuance_count(self, subject_ia=None):
        return self.issue_calls


class TestFaultyCa:
    def test_transparent_when_healthy(self):
        from repro.netsim.chaos import FaultyCa

        ca = FakeCa()
        faulty = FaultInjector(seed=1).wrap_ca(ca, FaultProfile(), name="ca")
        assert isinstance(faulty, FaultyCa)
        assert faulty.issue_as_certificate("71-10", b"pk", 5.0)[0] == "cert"
        assert faulty.renew("71-10", 6.0)[0] == "cert"
        assert ca.issue_calls == 2
        assert faulty.refused_requests == 0

    def test_hard_outage_refuses_and_records(self):
        from repro.netsim.chaos import CaOutage

        injector = FaultInjector(seed=1)
        faulty = injector.wrap_ca(FakeCa(), FaultProfile(), name="ca-isd71")
        faulty.set_down(True, now=3.0)
        with pytest.raises(CaOutage):
            faulty.issue_as_certificate("71-10", b"pk", 4.0)
        with pytest.raises(CaOutage):
            faulty.renew("71-10", 4.5)
        faulty.set_down(False, now=5.0)
        assert faulty.issue_as_certificate("71-10", b"pk", 6.0)
        assert faulty.refused_requests == 2
        kinds = [event.kind for event in injector.events]
        assert kinds == ["ca-outage", "ca-recovery"]

    def test_outage_is_transient_for_retry_policies(self):
        from repro.netsim.chaos import CaOutage

        assert CaOutage("down").transient is True

    def test_probabilistic_refusals_recorded_in_stream(self):
        from repro.netsim.chaos import CaOutage

        injector = FaultInjector(seed=7)
        faulty = injector.wrap_ca(
            FakeCa(), FaultProfile(outage=0.5), name="ca"
        )
        refused = 0
        for i in range(100):
            try:
                faulty.renew("71-10", float(i))
            except CaOutage:
                refused += 1
        assert 20 <= refused <= 80
        per_request = [
            event for event in injector.events if event.detail == "per-request"
        ]
        assert len(per_request) == refused

    def test_read_side_helpers_never_gated(self):
        injector = FaultInjector(seed=1)
        faulty = injector.wrap_ca(FakeCa(), FaultProfile(), name="ca")
        faulty.set_down(True, now=0.0)
        assert faulty.needs_renewal(None, 0.0) is False
        assert faulty.issuance_count() == 0


class TestCrashServiceFault:
    class FakeSupervisor:
        def __init__(self):
            self.crashes = []

        def crash(self, name, now):
            self.crashes.append((name, now))

    def test_crash_lands_in_supervisor_and_stream(self):
        injector = FaultInjector(seed=1)
        supervisor = self.FakeSupervisor()
        injector.crash_service(supervisor, "control", 12.0, detail="upgrade")
        assert supervisor.crashes == [("control", 12.0)]
        assert injector.events == [
            FaultEvent(12.0, "control", "service-crash", "upgrade")
        ]

    def test_crash_events_change_digest(self):
        first = FaultInjector(seed=1)
        second = FaultInjector(seed=1)
        first.crash_service(self.FakeSupervisor(), "control", 1.0)
        assert first.event_digest() != second.event_digest()


class TestLoadSurge:
    def test_same_seed_same_arrival_stream(self):
        kwargs = dict(surge_multiplier=4.0, surge_start_s=2.0,
                      surge_end_s=4.0, high_priority_fraction=0.1, seed=42)
        first = LoadSurge(100.0, **kwargs).arrivals(6.0)
        second = LoadSurge(100.0, **kwargs).arrivals(6.0)
        assert first == second
        assert LoadSurge(100.0, **dict(kwargs, seed=43)).arrivals(6.0) != first

    def test_rate_window(self):
        surge = LoadSurge(100.0, surge_multiplier=4.0, surge_start_s=2.0,
                          surge_end_s=4.0)
        assert surge.rate_at(0.0) == 100.0
        assert surge.rate_at(2.0) == 400.0
        assert surge.rate_at(3.999) == 400.0
        assert surge.rate_at(4.0) == 100.0

    def test_arrival_counts_track_the_offered_rate(self):
        surge = LoadSurge(200.0, surge_multiplier=5.0, surge_start_s=5.0,
                          surge_end_s=10.0, seed=7)
        arrivals = surge.arrivals(15.0)
        inside = sum(1 for a in arrivals if 5.0 <= a.time_s < 10.0)
        outside = len(arrivals) - inside
        # ~1000/s for 5 s inside the window, ~200/s for 10 s outside.
        assert 4500 <= inside <= 5500
        assert 1700 <= outside <= 2300
        assert all(0.0 <= a.time_s < 15.0 for a in arrivals)
        assert arrivals == sorted(arrivals, key=lambda a: a.time_s)

    def test_high_priority_fraction_tags_critical_arrivals(self):
        surge = LoadSurge(500.0, high_priority_fraction=0.2, seed=9)
        arrivals = surge.arrivals(10.0)
        critical = sum(1 for a in arrivals if a.priority == 0)
        assert 0.15 <= critical / len(arrivals) <= 0.25
        assert LoadSurge(500.0, seed=9).arrivals(10.0)[0].priority == 1

    def test_surge_window_recorded_as_fault_events(self):
        injector = FaultInjector(seed=1)
        surge = LoadSurge(100.0, surge_multiplier=2.0, surge_start_s=1.0,
                          surge_end_s=9.0, injector=injector, name="storm")
        surge.arrivals(5.0)
        kinds = [(e.kind, e.time_s) for e in injector.events]
        # The end event is clamped to the stream's duration.
        assert kinds == [("load-surge-start", 1.0), ("load-surge-end", 5.0)]

    def test_no_events_without_surge_window(self):
        injector = FaultInjector(seed=1)
        LoadSurge(100.0, injector=injector).arrivals(2.0)
        assert injector.events == []

    def test_validation(self):
        with pytest.raises(ChaosError):
            LoadSurge(0.0)
        with pytest.raises(ChaosError):
            LoadSurge(100.0, surge_multiplier=0.5)
        with pytest.raises(ChaosError):
            LoadSurge(100.0, surge_start_s=2.0, surge_end_s=1.0)
        with pytest.raises(ChaosError):
            LoadSurge(100.0, high_priority_fraction=1.5)
        with pytest.raises(ChaosError):
            LoadSurge(100.0).arrivals(0.0)

    def test_arrival_dataclass_is_frozen(self):
        arrival = Arrival(1.0, priority=0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            arrival.time_s = 2.0
