"""Unit tests for the discrete-event simulator."""

import pytest

from repro.netsim.simulator import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(1.5, order.append, "middle")
    sim.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert sim.now == pytest.approx(2.0)


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, order.append, label)
    sim.run_until_idle()
    assert order == ["first", "second", "third"]


def test_schedule_in_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    timer.cancel()
    sim.run_until_idle()
    assert fired == []
    assert timer.cancelled


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.pending_events == 1
    sim.run_until_idle()
    assert fired == ["a", "b"]


def test_nested_scheduling_from_handler():
    sim = Simulator()
    seen = []

    def handler(depth):
        seen.append((sim.now, depth))
        if depth < 3:
            sim.schedule(1.0, handler, depth + 1)

    sim.schedule(0.0, handler, 0)
    sim.run_until_idle()
    assert [d for _, d in seen] == [0, 1, 2, 3]
    assert seen[-1][0] == pytest.approx(3.0)


def test_spawn_generator_process():
    sim = Simulator()
    log = []

    def process():
        log.append(("start", sim.now))
        yield 2.0
        log.append(("mid", sim.now))
        yield 3.0
        log.append(("end", sim.now))

    sim.spawn(process())
    sim.run_until_idle()
    assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]


def test_spawn_negative_delay_raises():
    sim = Simulator()

    def bad():
        yield -1.0

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run_until_idle()


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    assert sim.events_processed == 5
