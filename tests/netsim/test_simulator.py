"""Unit tests for the discrete-event simulator."""

from collections import Counter

import pytest

from repro.netsim.simulator import COMPACT_MIN_CANCELLED, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(1.5, order.append, "middle")
    sim.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert sim.now == pytest.approx(2.0)


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    order = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, order.append, label)
    sim.run_until_idle()
    assert order == ["first", "second", "third"]


def test_schedule_in_past_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    timer.cancel()
    sim.run_until_idle()
    assert fired == []
    assert timer.cancelled


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.pending_events == 1
    sim.run_until_idle()
    assert fired == ["a", "b"]


def test_nested_scheduling_from_handler():
    sim = Simulator()
    seen = []

    def handler(depth):
        seen.append((sim.now, depth))
        if depth < 3:
            sim.schedule(1.0, handler, depth + 1)

    sim.schedule(0.0, handler, 0)
    sim.run_until_idle()
    assert [d for _, d in seen] == [0, 1, 2, 3]
    assert seen[-1][0] == pytest.approx(3.0)


def test_spawn_generator_process():
    sim = Simulator()
    log = []

    def process():
        log.append(("start", sim.now))
        yield 2.0
        log.append(("mid", sim.now))
        yield 3.0
        log.append(("end", sim.now))

    sim.spawn(process())
    sim.run_until_idle()
    assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]


def test_spawn_negative_delay_raises():
    sim = Simulator()

    def bad():
        yield -1.0

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run_until_idle()


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run_until_idle()
    assert sim.events_processed == 5


# -- until + max_events interaction (the monotonic-clock contract) -----------


def test_run_until_with_max_events_advances_clock_when_window_done():
    """Regression: max_events used to skip the ``now = until`` fast-forward.

    Both events fire inside the window and nothing else is runnable before
    ``until``, so the clock must land exactly on ``until`` — the old code
    returned early at 2.0 and a later ``run(until=3.0)`` saw time move in a
    way the caller (who believed now == 5.0) could not explain.
    """
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    processed = sim.run(until=5.0, max_events=2)
    assert processed == 2
    assert fired == ["a", "b"]
    assert sim.now == 5.0


def test_run_max_events_truncation_leaves_clock_at_last_event():
    """A genuine truncation may not jump the clock past unprocessed events."""
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, fired.append, t)
    processed = sim.run(until=5.0, max_events=2)
    assert processed == 2
    assert fired == [1.0, 2.0]
    # Event at 3.0 is still pending inside the window: no fast-forward.
    assert sim.now == 2.0
    # Finishing the window completes the contract: clock lands on until.
    assert sim.run(until=5.0) == 1
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 5.0


def test_run_max_events_zero_fires_nothing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    assert sim.run(max_events=0) == 0
    assert fired == []
    assert sim.pending_events == 1


def test_run_until_skips_cancelled_events_when_fast_forwarding():
    """Only *live* events inside the window block the fast-forward."""
    sim = Simulator()
    fired = []
    timer = sim.schedule(3.0, fired.append, "dead")
    sim.schedule(1.0, fired.append, "live")
    timer.cancel()
    processed = sim.run(until=5.0, max_events=1)
    assert processed == 1
    assert fired == ["live"]
    assert sim.now == 5.0


def test_repeated_runs_keep_clock_monotonic():
    sim = Simulator()
    observed = []
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule(t, lambda: observed.append(sim.now))
    last = 0.0
    for until in (1.0, 2.0, 2.0, 4.0, 3.0):
        sim.run(until=until, max_events=1)
        assert sim.now >= last
        last = sim.now
    assert observed == sorted(observed)


# -- cancellation-heavy heaps (live counter + lazy compaction) ---------------


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    timers = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for timer in timers[:4]:
        timer.cancel()
    assert sim.pending_events == 6
    # Double-cancel must not decrement twice.
    timers[0].cancel()
    assert sim.pending_events == 6
    sim.run_until_idle()
    assert sim.pending_events == 0
    assert sim.events_processed == 6


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    sim.run_until_idle()
    assert fired == ["x"]
    timer.cancel()  # too late, but must not corrupt the live counter
    assert sim.pending_events == 0
    sim.schedule(1.0, fired.append, "y")
    assert sim.pending_events == 1
    sim.run_until_idle()
    assert fired == ["x", "y"]


def test_mass_cancellation_compacts_heap():
    """Timer churn must not grow the heap unboundedly."""
    sim = Simulator()
    timers = [sim.schedule(1.0 + i * 1e-3, lambda: None) for i in range(1000)]
    for timer in timers[100:]:
        timer.cancel()
    assert sim.pending_events == 100
    # Lazy compaction kicked in: far fewer raw entries than scheduled.
    assert sim.heap_size <= 500
    sim.run_until_idle()
    assert sim.events_processed == 100


def test_compaction_preserves_event_order():
    """Compaction re-heapifies; (when, seq) total order must survive."""
    sim = Simulator()
    order = []
    keep = []
    for i in range(900):
        timer = sim.schedule(1.0, order.append, i)  # all tie on time
        if i % 3 == 0:
            keep.append(i)
        else:
            # Cancelling two of every three drives the cancelled count past
            # both compaction conditions mid-loop.
            timer.cancel()
    assert sim.heap_size < 900
    sim.run_until_idle()
    assert order == keep  # scheduling order preserved across compaction


def test_mid_run_mass_cancellation_fires_each_event_exactly_once():
    """Regression: compaction triggered *by a running callback* must not
    invalidate the heap ``run`` is iterating.

    ``_compact`` used to rebind ``self._heap`` to a new list while ``run``
    kept popping a local alias of the old one: live events fired from the
    stale list but survived in the new heap (firing again on the next
    ``run``), the live counter went negative, and events scheduled by
    callbacks after compaction were silently skipped for the rest of the
    window.  Compaction now happens in place, preserving list identity.
    """
    sim = Simulator()
    fired = Counter()
    n_victims = COMPACT_MIN_CANCELLED + 50
    victims = [
        sim.schedule(2.0 + i * 1e-3, fired.update, ("victim",))
        for i in range(n_victims)
    ]
    n_survivors = 5
    for i in range(n_survivors):
        sim.schedule(3.0 + i, fired.update, (f"live-{i}",))

    def massacre():
        # Cancelling this many timers mid-run drives the cancelled count
        # past both compaction conditions while run() is iterating.
        for timer in victims:
            timer.cancel()
        assert sim.heap_size < n_victims  # compaction actually happened
        # Scheduled *after* compaction: must still fire in this window.
        sim.schedule(1.0, fired.update, ("post-compact",))

    sim.schedule(1.0, massacre)
    sim.run_until_idle()
    assert fired["victim"] == 0
    assert fired["post-compact"] == 1
    assert all(fired[f"live-{i}"] == 1 for i in range(n_survivors))
    assert sim.pending_events == 0
    assert sim.now == pytest.approx(3.0 + n_survivors - 1)
    # A second run must not re-fire anything from a stale heap.
    sim.run_until_idle()
    assert sum(fired.values()) == n_survivors + 1


def test_run_until_idle_ignores_cancelled_timers_in_backstop():
    """A heap full of cancelled timers is idle, not runaway."""
    sim = Simulator()
    fired = []
    for i in range(50):
        sim.schedule(1.0 + i, fired.append, i)
    dead = [sim.schedule(100.0 + i, fired.append, -1) for i in range(500)]
    for timer in dead:
        timer.cancel()
    sim.run_until_idle(max_events=50)  # must not raise
    assert len(fired) == 50
    assert sim.pending_events == 0


# -- processes that raise -----------------------------------------------------


def test_spawn_process_exception_propagates_and_sim_stays_usable():
    sim = Simulator()

    def bad_process():
        yield 1.0
        raise RuntimeError("process blew up")

    sim.spawn(bad_process())
    with pytest.raises(RuntimeError, match="process blew up"):
        sim.run_until_idle()
    # The clock stayed at the event that raised; the simulator is usable.
    assert sim.now == 1.0
    fired = []
    sim.schedule(1.0, fired.append, "after")
    sim.run_until_idle()
    assert fired == ["after"]
    assert sim.now == 2.0
