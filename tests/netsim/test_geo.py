"""Tests for the geographic latency model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.netsim.geo import (
    CITY_COORDS,
    FIBER_SPEED_KM_S,
    GeoPoint,
    city,
    haversine_km,
    propagation_delay_s,
)


def test_zero_distance_same_point():
    p = GeoPoint(47.37, 8.54)
    assert haversine_km(p, p) == pytest.approx(0.0)


def test_known_distance_zurich_singapore():
    # Great-circle Zurich-Singapore is roughly 10,300 km.
    d = haversine_km(city("zurich"), city("singapore"))
    assert 10_000 < d < 10_600


def test_transatlantic_delay_plausible():
    # Amsterdam <-> Ashburn one-way: tens of milliseconds.
    delay = propagation_delay_s(city("amsterdam"), city("ashburn"))
    assert 0.025 < delay < 0.075


def test_min_delay_floor():
    p = city("amsterdam")
    assert propagation_delay_s(p, p) == pytest.approx(0.0002)


def test_route_factor_below_one_rejected():
    with pytest.raises(ValueError):
        propagation_delay_s(city("paris"), city("london"), route_factor=0.5)


def test_unknown_city_raises_with_hint():
    with pytest.raises(KeyError, match="known cities"):
        city("atlantis")


def test_all_paper_cities_present():
    # Every PoP city from Table 1 of the paper must resolve.
    for name in (
        "amsterdam", "ashburn", "chicago", "daejeon", "frankfurt", "geneva",
        "hong_kong", "jacksonville", "jeddah", "lisbon", "london", "madrid",
        "mclean", "paris", "seattle", "singapore",
    ):
        assert city(name) is not None


@given(
    lat1=st.floats(-90, 90), lon1=st.floats(-180, 180),
    lat2=st.floats(-90, 90), lon2=st.floats(-180, 180),
)
def test_haversine_is_symmetric_and_bounded(lat1, lon1, lat2, lon2):
    a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
    d_ab = haversine_km(a, b)
    d_ba = haversine_km(b, a)
    assert d_ab == pytest.approx(d_ba, abs=1e-6)
    # No two points on Earth are farther apart than half the circumference.
    assert 0 <= d_ab <= math.pi * 6371.0 + 1e-6


@given(
    lat1=st.floats(-90, 90), lon1=st.floats(-180, 180),
    lat2=st.floats(-90, 90), lon2=st.floats(-180, 180),
)
def test_delay_at_least_speed_of_light_in_fiber(lat1, lon1, lat2, lon2):
    a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
    delay = propagation_delay_s(a, b, route_factor=1.0)
    assert delay >= haversine_km(a, b) / FIBER_SPEED_KM_S - 1e-12
