"""The Byzantine adversary vs the hardened stack: every attack must fail
closed AND be detected (attributed in security counters and the event
timeline), and the same attack must succeed once the corresponding
verification gate is opened — proof the gate is what stops it.
"""

import pytest

from repro.core.overload import OverloadGuard
from repro.endhost.daemon import Daemon
from repro.netsim.adversary import ByzantineAdversary
from repro.netsim.crucible import TOPOLOGIES
from repro.obs import Telemetry
from repro.scion.crypto.keys import SymmetricKey
from repro.scion.network import ScionNetwork
from repro.sciera.lightningfilter import LightningFilter


@pytest.fixture
def world():
    telemetry = Telemetry()
    network = ScionNetwork(
        TOPOLOGIES["mesh5"](0), seed=0, verify_beacons=True,
        telemetry=telemetry,
    )
    adversary = ByzantineAdversary(
        network, seed=7, event_log=telemetry.events
    )
    return network, adversary, telemetry


def _leaves(network):
    return sorted(
        ia for ia, topo in network.topology.ases.items() if not topo.is_core
    )


def _core_interface(network):
    core = network.topology.core_ases()[0]
    ifid = sorted(network.topology.get(core).interfaces)[0]
    return core, ifid


class TestBeaconAttacks:
    def test_forged_beacon_rejected_and_detected(self, world):
        network, adversary, _ = world
        victim = _leaves(network)[0]
        before = network.beaconing.stats.beacons_rejected_invalid
        outcome = adversary.forge_beacon(victim, float(network.timestamp))
        assert not outcome.succeeded
        assert outcome.detected
        assert network.beaconing.stats.beacons_rejected_invalid > before
        # The forged signature never reaches any store.
        assert adversary.forged_beacon_signatures

    def test_replayed_beacon_rejected_as_stale(self, world):
        network, adversary, _ = world
        victim = _leaves(network)[0]
        before = network.beaconing.stats.beacons_rejected_replayed
        outcome = adversary.replay_beacon(victim, float(network.timestamp))
        assert not outcome.succeeded
        assert outcome.detected
        assert network.beaconing.stats.beacons_rejected_replayed > before

    def test_forgery_succeeds_with_verification_off(self, world):
        network, adversary, _ = world
        network.beaconing.verify_beacons = False
        outcome = adversary.forge_beacon(
            _leaves(network)[0], float(network.timestamp)
        )
        assert outcome.succeeded


class TestRevocationAttacks:
    def test_forged_revocation_rejected_by_server_and_daemon(self, world):
        network, adversary, telemetry = world
        core, ifid = _core_interface(network)
        daemon = Daemon(network, _leaves(network)[0], telemetry=telemetry)
        outcome = adversary.forge_revocation(
            core, ifid, float(network.timestamp), daemon=daemon
        )
        assert not outcome.succeeded
        assert outcome.detected
        assert daemon.stats.revocations_rejected > 0
        assert not network.registry.active_revocations()

    def test_replayed_revocation_ignored(self, world):
        network, adversary, _ = world
        core, ifid = _core_interface(network)
        outcome = adversary.replay_revocation(
            core, ifid, float(network.timestamp)
        )
        assert not outcome.succeeded
        assert outcome.detected
        assert not network.registry.active_revocations()

    def test_forgery_succeeds_against_trusting_server(self, world):
        network, adversary, _ = world
        for service in network.services.values():
            service.path_server.revocation_verifier = None
            service.path_server.check_revocation_freshness = False
        core, ifid = _core_interface(network)
        outcome = adversary.forge_revocation(
            core, ifid, float(network.timestamp)
        )
        assert outcome.succeeded
        assert network.registry.active_revocations()


class TestDataplaneTampering:
    def test_mac_flip_dropped(self, world):
        network, adversary, _ = world
        src, dst = _leaves(network)[0], _leaves(network)[-1]
        outcome = adversary.tamper_packet(
            src, dst, float(network.timestamp), mode="mac"
        )
        assert not outcome.succeeded
        assert outcome.detected

    def test_inflated_lifetime_dropped(self, world):
        network, adversary, _ = world
        src, dst = _leaves(network)[0], _leaves(network)[-1]
        outcome = adversary.tamper_packet(
            src, dst, float(network.timestamp), mode="inflate"
        )
        assert not outcome.succeeded
        assert outcome.detected
        assert "drop-inflated-hop" in outcome.detail

    def test_tamper_succeeds_without_mac_verification(self, world):
        network, adversary, _ = world
        for router in network.dataplane.routers.values():
            router.verify_macs = False
        src, dst = _leaves(network)[0], _leaves(network)[-1]
        outcome = adversary.tamper_packet(
            src, dst, float(network.timestamp), mode="mac"
        )
        assert outcome.succeeded


class TestFilterAndFloodAttacks:
    def _filter(self, network, telemetry):
        return LightningFilter(
            _leaves(network)[-1], SymmetricKey(b"k" * 32),
            telemetry=telemetry,
        )

    def test_wrong_epoch_stamp_rejected(self, world):
        network, adversary, telemetry = world
        lf = self._filter(network, telemetry)
        outcome = adversary.wrong_epoch_stamp(
            lf, "71-1:0:1", float(network.timestamp)
        )
        assert not outcome.succeeded
        assert outcome.detected
        assert lf.stats.rejected_auth > 0

    def test_spoofed_flood_rejected(self, world):
        network, adversary, telemetry = world
        lf = self._filter(network, telemetry)
        outcome = adversary.flood_filter(lf, float(network.timestamp))
        assert not outcome.succeeded
        assert outcome.detected
        assert lf.stats.accepted == 0

    def test_flood_succeeds_with_auth_off(self, world):
        network, adversary, telemetry = world
        lf = self._filter(network, telemetry)
        lf.verify_auth = False
        outcome = adversary.flood_filter(lf, float(network.timestamp))
        assert outcome.succeeded

    def test_guard_sheds_flood_but_spares_critical(self, world):
        network, adversary, telemetry = world
        guard = OverloadGuard(
            service_time_s=0.002, name="ps:test", critical_priority=0,
            telemetry=telemetry,
        )
        now = float(network.timestamp)
        outcome = adversary.flood_guard(
            guard, now, target="ps:test", requests=400, duration_s=0.5,
            priority=2,
        )
        assert not outcome.succeeded
        assert outcome.detected
        # Critical-priority honest work still gets through afterwards.
        assert guard.offer(now + 2.0, priority=0).admitted

    def test_no_guard_means_flood_succeeds(self, world):
        network, adversary, _ = world
        outcome = adversary.flood_guard(
            None, float(network.timestamp), target="ps:naive"
        )
        assert outcome.succeeded
        assert not outcome.detected


class TestDeterminismAndAttribution:
    def _campaign(self, seed):
        telemetry = Telemetry()
        network = ScionNetwork(
            TOPOLOGIES["mesh5"](0), seed=0, verify_beacons=True,
            telemetry=telemetry,
        )
        adversary = ByzantineAdversary(
            network, seed=seed, event_log=telemetry.events
        )
        now = float(network.timestamp)
        victim = _leaves(network)[0]
        core, ifid = _core_interface(network)
        adversary.forge_beacon(victim, now)
        adversary.replay_beacon(victim, now + 0.1)
        adversary.forge_revocation(core, ifid, now + 0.2)
        adversary.tamper_packet(victim, _leaves(network)[-1], now + 0.3)
        return adversary, telemetry

    def test_event_digest_is_deterministic(self):
        first, _ = self._campaign(3)
        second, _ = self._campaign(3)
        assert first.event_digest() == second.event_digest()
        assert len(first.outcomes) == len(second.outcomes)

    def test_different_seed_different_rogue_identity(self):
        first, _ = self._campaign(3)
        second, _ = self._campaign(4)
        # Different rogue identities forge different material.
        assert (
            first.forged_beacon_signatures
            != second.forged_beacon_signatures
        )

    def test_attacks_attributed_in_event_log(self):
        adversary, telemetry = self._campaign(3)
        sources = {event.source for event in telemetry.events.events}
        assert "adversary" in sources
        kinds = {
            event.kind for event in telemetry.events.events
            if event.source == "adversary"
        }
        assert "forge-beacon" in kinds
        assert "forge-revocation" in kinds
