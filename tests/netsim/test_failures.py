"""Tests for failure and maintenance schedules."""

import pytest

from repro.netsim.failures import FailureSchedule, LinkEvent, MaintenanceWindow
from repro.netsim.link import Link
from repro.netsim.simulator import Simulator


def make_links():
    return {
        "alpha": Link("alpha", "A", "B", 0.01),
        "beta": Link("beta", "B", "C", 0.01),
    }


def test_maintenance_window_takes_link_down_and_restores():
    sim = Simulator()
    links = make_links()
    schedule = FailureSchedule()
    schedule.add_maintenance(MaintenanceWindow("alpha", 10.0, 20.0))
    schedule.install(sim, links)

    sim.run(until=5.0)
    assert links["alpha"].up
    sim.run(until=15.0)
    assert not links["alpha"].up
    sim.run(until=25.0)
    assert links["alpha"].up


def test_cable_cut_without_repair_is_permanent():
    sim = Simulator()
    links = make_links()
    schedule = FailureSchedule()
    schedule.add_cable_cut("beta", 5.0)
    schedule.install(sim, links)
    sim.run_until_idle()
    assert not links["beta"].up


def test_cable_cut_with_repair():
    sim = Simulator()
    links = make_links()
    schedule = FailureSchedule()
    schedule.add_cable_cut("beta", 5.0, repair_s=50.0)
    schedule.install(sim, links)
    sim.run(until=10.0)
    assert not links["beta"].up
    sim.run(until=60.0)
    assert links["beta"].up


def test_unknown_link_rejected_at_install():
    sim = Simulator()
    schedule = FailureSchedule()
    schedule.add_event(LinkEvent(1.0, "ghost", up=False))
    with pytest.raises(KeyError, match="ghost"):
        schedule.install(sim, make_links())


def test_invalid_windows_rejected():
    with pytest.raises(ValueError):
        MaintenanceWindow("alpha", 10.0, 10.0).events()
    schedule = FailureSchedule()
    with pytest.raises(ValueError):
        schedule.add_cable_cut("alpha", 10.0, repair_s=5.0)


def test_observers_notified_in_time_order():
    sim = Simulator()
    links = make_links()
    schedule = FailureSchedule()
    schedule.add_maintenance(MaintenanceWindow("alpha", 10.0, 20.0))
    schedule.add_cable_cut("beta", 15.0)
    seen = []
    schedule.subscribe(lambda e: seen.append((e.time_s, e.link_name, e.up)))
    schedule.install(sim, links)
    sim.run_until_idle()
    assert seen == [
        (10.0, "alpha", False),
        (15.0, "beta", False),
        (20.0, "alpha", True),
    ]


def test_events_property_sorted():
    schedule = FailureSchedule()
    schedule.add_event(LinkEvent(20.0, "alpha", up=True))
    schedule.add_event(LinkEvent(10.0, "alpha", up=False))
    assert [e.time_s for e in schedule.events] == [10.0, 20.0]
