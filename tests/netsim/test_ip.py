"""Tests for the BGP-like single-path IP baseline."""

import pytest

from repro.netsim.ip import IpInternet


def triangle():
    """A-B direct (slow), A-C-B indirect but each edge fast."""
    net = IpInternet()
    for node in "ABC":
        net.add_node(node)
    net.add_link("A", "B", latency_s=0.100)
    net.add_link("A", "C", latency_s=0.010)
    net.add_link("C", "B", latency_s=0.010)
    return net


def test_bgp_prefers_fewest_hops_not_lowest_latency():
    net = triangle()
    route = net.route("A", "B")
    # BGP semantics: 1-hop direct path wins although 2-hop is faster.
    assert route.hops == ("A", "B")
    assert route.rtt_s == pytest.approx(0.200)


def test_single_path_per_pair_is_deterministic():
    net = IpInternet()
    for node in "ABCD":
        net.add_node(node)
    # Two equal-hop-count paths A-B-D and A-C-D: tie-break must be stable.
    net.add_link("A", "B", 0.01)
    net.add_link("B", "D", 0.01)
    net.add_link("A", "C", 0.01)
    net.add_link("C", "D", 0.01)
    first = net.route("A", "D")
    for _ in range(5):
        assert net.route("A", "D").hops == first.hops
    assert first.hops == ("A", "B", "D")  # lexicographically smallest


def test_failure_reroutes_to_next_best_path():
    net = triangle()
    net.set_link_state("A", "B", False)
    route = net.route("A", "B")
    assert route.hops == ("A", "C", "B")
    assert route.rtt_s == pytest.approx(0.040)


def test_partition_returns_none():
    net = triangle()
    net.set_link_state("A", "B", False)
    net.set_link_state("A", "C", False)
    assert net.route("A", "B") is None
    assert net.rtt_s("A", "B") is None


def test_repair_restores_original_route():
    net = triangle()
    net.set_link_state("A", "B", False)
    assert net.route("A", "B").hops == ("A", "C", "B")
    net.set_link_state("A", "B", True)
    assert net.route("A", "B").hops == ("A", "B")


def test_self_route_is_trivial():
    net = triangle()
    route = net.route("A", "A")
    assert route.hops == ("A",)
    assert route.rtt_s == 0.0


def test_unknown_node_raises():
    net = triangle()
    with pytest.raises(KeyError):
        net.route("A", "Z")


def test_set_link_state_by_name():
    net = IpInternet()
    net.add_node("A")
    net.add_node("B")
    net.add_link("A", "B", 0.01, link_name="transatlantic")
    net.set_link_state_by_name("transatlantic", False)
    assert net.route("A", "B") is None
    with pytest.raises(KeyError):
        net.set_link_state_by_name("ghost", False)


def test_connectivity_matrix():
    net = triangle()
    matrix = net.connectivity_matrix()
    assert all(matrix.values())
    net.set_link_state("A", "B", False)
    net.set_link_state("A", "C", False)
    matrix = net.connectivity_matrix()
    assert not matrix[("A", "B")]
    assert matrix[("B", "C")]
