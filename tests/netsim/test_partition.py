"""Network partitions: silent blackholes, asymmetric cuts, and the
monitor/alert plumbing they surface.

The regression class at the bottom pins the bug the partition fault
found: under an asymmetric cut both sides' monitors see probe failures
(an echo reply reverses the same path, so a one-way cut kills the round
trip in both directions), and the alert pipeline used to count the one
outage as two independent incidents.
"""

import pytest

from repro.core.monitoring import Alert, ConnectivityMonitor
from repro.netsim.chaos import FaultInjector
from repro.netsim.crucible import TOPOLOGIES
from repro.netsim.simulator import Simulator
from repro.obs import EventLog, Telemetry
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork

CORE1, CORE2 = IA(71, 1), IA(71, 2)
LEAF1, LEAF2, LEAF3 = IA(71, 100), IA(71, 200), IA(71, 300)


def _world(seed: int = 7, telemetry: Telemetry = None):
    network = ScionNetwork(
        TOPOLOGIES["mesh5"](seed), seed=seed, verify_beacons=False,
        telemetry=telemetry,
    )
    injector = FaultInjector(seed=seed)
    return network, injector


def _probe_ok(network, src, dst, now) -> bool:
    metas = network.paths(src, dst, now=now)
    return any(
        network.dataplane.probe(m.path, now).success for m in metas
    )


class TestPartitionSemantics:
    def test_symmetric_cut_kills_both_directions(self):
        network, injector = _world()
        now = float(network.timestamp)
        assert _probe_ok(network, LEAF1, LEAF2, now)
        partition = injector.partition(
            network.topology, [LEAF2], now, mode="symmetric"
        )
        assert not _probe_ok(network, LEAF1, LEAF2, now)
        assert not _probe_ok(network, LEAF2, LEAF1, now)
        partition.heal(now + 1.0)
        assert _probe_ok(network, LEAF1, LEAF2, now + 1.0)
        assert _probe_ok(network, LEAF2, LEAF1, now + 1.0)
        assert not network.topology.partitioned_links

    def test_partition_is_silent_no_link_down(self):
        """Unlike set_link_state, a partition leaves every link *up* —
        the frames just vanish, with no SCMP and no revocation."""
        network, injector = _world()
        now = float(network.timestamp)
        partition = injector.partition(network.topology, [LEAF2], now)
        assert partition.cut_links
        for name in partition.cut_links:
            assert network.topology.links[name].up
        metas = network.paths(LEAF1, LEAF2, now=now)
        result = network.dataplane.probe(metas[0].path, now)
        assert not result.success
        assert result.failure in ("partition", "partition-reply")
        partition.heal(now)

    def test_asymmetric_cut_is_one_way_on_the_wire(self):
        """Outbound cut: the subset cannot send, but frames *into* the
        subset still walk cleanly — only the echo reply dies."""
        network, injector = _world()
        now = float(network.timestamp)
        partition = injector.partition(
            network.topology, [LEAF2], now, mode="outbound"
        )
        into = network.paths(LEAF1, LEAF2, now=now)[0].path
        # One-way walk into the subset: delivered.
        assert network.dataplane.walk(into, now).success
        # Round trip: the reply leaves the subset and hits the cut.
        result = network.dataplane.probe(into, now)
        assert not result.success
        assert result.failure == "partition-reply"
        # And the subset's own egress is cut outright.
        out = network.paths(LEAF2, LEAF1, now=now)[0].path
        assert network.dataplane.walk(out, now).failure == "partition"
        partition.heal(now)

    def test_heal_is_idempotent_and_event_stream_recorded(self):
        network, injector = _world()
        now = float(network.timestamp)
        partition = injector.partition(network.topology, [LEAF3], now)
        partition.heal(now + 2.0)
        partition.heal(now + 3.0)  # second heal is a no-op
        kinds = [e.kind for e in injector.events]
        assert kinds.count("partition-start") == 1
        assert kinds.count("partition-heal") == 1

    def test_overlapping_partitions_each_own_their_blocks(self):
        network, injector = _world()
        now = float(network.timestamp)
        first = injector.partition(network.topology, [LEAF1], now)
        second = injector.partition(
            network.topology, [LEAF1, LEAF3], now + 0.1
        )
        first.heal(now + 0.2)
        # leaf-1 is still inside the second partition's subset.
        assert not _probe_ok(network, LEAF2, LEAF1, now + 0.3)
        second.heal(now + 0.4)
        assert _probe_ok(network, LEAF2, LEAF1, now + 0.5)
        assert not network.topology.partitioned_links

    def test_unknown_mode_rejected(self):
        from repro.netsim.chaos import ChaosError

        network, injector = _world()
        with pytest.raises(ChaosError):
            injector.partition(
                network.topology, [LEAF1], 0.0, mode="sideways"
            )


class TestAsymmetricPartitionAlertDedup:
    """The satellite-3 regression: one outage, one alert, however many
    vantage points noticed it."""

    def _lost(self, time_s, src, dst):
        return Alert(time_s=time_s, kind="connectivity-lost", src=src,
                     dst=dst, email_to="noc@example.net")

    def test_reverse_direction_alert_is_deduplicated(self):
        log = EventLog()
        assert log.record_alert(self._lost(1.0, "71-100", "71-200")) is not None
        # The other side's monitor reports the same incident reversed.
        assert log.record_alert(self._lost(1.1, "71-200", "71-100")) is None
        assert log.suppressed_alerts == 1
        # Display keeps the direction the first alert arrived in.
        assert log.down_pairs() == ["71-100->71-200"]

    def test_monitors_on_both_sides_of_asymmetric_cut_one_incident(self):
        tel = Telemetry()
        network, injector = _world(telemetry=tel)
        now = float(network.timestamp)
        sim = Simulator(start_time=now)
        monitors = [
            ConnectivityMonitor(network, LEAF1, [LEAF2],
                                probe_interval_s=0.5, telemetry=tel),
            ConnectivityMonitor(network, LEAF2, [LEAF1],
                                probe_interval_s=0.5, telemetry=tel),
        ]
        partition = injector.partition(
            network.topology, [LEAF2], now, mode="inbound"
        )
        for monitor in monitors:
            monitor.start(sim)
        sim.run(until=now + 2.0)
        for monitor in monitors:
            monitor.stop()
        partition.heal(now + 2.0)
        # Both monitors alerted (the echo reply crosses the cut)...
        assert sum(len(m.alerts) for m in monitors) == 2
        # ...but the timeline counts one incident, not two.
        assert tel.events.down_pairs() == ["71-100->71-200"]
        assert tel.events.suppressed_alerts == 1
