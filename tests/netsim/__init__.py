"""Test package."""
