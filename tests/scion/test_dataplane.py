"""Tests for the data plane: router verdicts, probes, DES delivery,
dispatcher models, and the intra-AS underlay."""

import dataclasses

import pytest

from repro.netsim.simulator import Simulator
from repro.scion.addr import IA, HostAddr
from repro.scion.crypto.keys import SymmetricKey
from repro.scion.dataplane.dispatcher import (
    Dispatcher,
    DispatcherError,
    DispatcherlessStack,
    EndHostDataPathModel,
)
from repro.scion.dataplane.underlay import IntraAsNetwork, UnderlayError
from repro.scion.packet import ScionPacket
from repro.scion.revocation import revocation_from_scmp
from repro.scion.scmp import (
    CODE_PATH_EXPIRED,
    CODE_QUEUE_FULL,
    CODE_UNKNOWN_PATH_INTERFACE,
    ScmpType,
)
from repro.scion.path import (
    DataplanePath,
    HopField,
    PathSegmentHops,
    InfoField,
)

A = IA.parse("71-100")
B = IA.parse("71-200")


class TestProbeSecurity:
    """Packets with invalid hop fields must not traverse the network."""

    def _forge(self, path, mutate):
        segments = []
        for seg in path.segments:
            hops = tuple(mutate(h) for h in seg.hops)
            segments.append(PathSegmentHops(seg.info, hops))
        return DataplanePath(tuple(segments))

    def test_forged_mac_dropped(self, diamond_network):
        meta = diamond_network.paths(A, B)[0]
        forged = self._forge(
            meta.path,
            lambda h: dataclasses.replace(h, mac=bytes(6)),
        )
        result = diamond_network.dataplane.probe(forged, diamond_network.timestamp)
        assert not result.success
        assert result.failure == "drop-bad-mac"

    def test_modified_egress_dropped(self, diamond_network):
        meta = diamond_network.paths(A, B)[0]
        forged = self._forge(
            meta.path,
            lambda h: dataclasses.replace(h, cons_egress=h.cons_egress + 1)
            if h.cons_egress else h,
        )
        result = diamond_network.dataplane.probe(forged, diamond_network.timestamp)
        assert not result.success
        assert result.failure == "drop-bad-mac"

    def test_expired_hop_dropped(self, diamond_network):
        meta = diamond_network.paths(A, B)[0]
        late = meta.path.min_expiry() + 1
        result = diamond_network.dataplane.probe(meta.path, late)
        assert not result.success
        assert result.failure == "drop-expired"

    def test_frankenstein_segment_dropped(self, diamond_network):
        """Mixing hop fields of two different segments yields a path that
        fails link-continuity or MAC checks — it cannot be forwarded."""
        metas = diamond_network.paths(A, B)
        two_core = [
            m for m in metas
            if len(m.path.segments) >= 2 and len(m.path.segments[1].hops) >= 2
        ]
        assert len(two_core) >= 2, "need two multi-segment paths to splice"
        seg_a = two_core[0].path.segments[1]
        seg_b = two_core[1].path.segments[1]
        # Keep segment A's first hop but continue with segment B's tail.
        franken = PathSegmentHops(seg_a.info, (seg_a.hops[0],) + seg_b.hops[1:])
        spliced = DataplanePath(
            (two_core[0].path.segments[0], franken)
            + two_core[0].path.segments[2:]
        )
        result = diamond_network.dataplane.probe(spliced, diamond_network.timestamp)
        assert not result.success

    def test_beta_mismatch_dropped(self, diamond_network):
        """A hop field re-stamped with a different beta fails its MAC."""
        meta = diamond_network.paths(A, B)[0]
        forged = self._forge(
            meta.path,
            lambda h: dataclasses.replace(h, beta=(h.beta + 1) & 0xFFFF),
        )
        result = diamond_network.dataplane.probe(forged, diamond_network.timestamp)
        assert not result.success
        assert result.failure == "drop-bad-mac"


class TestProbeLinkState:
    def test_link_down_fails_probe(self, fresh_diamond_network):
        net = fresh_diamond_network
        direct = net.paths(A, B)[0]  # A -> C2 -> B
        net.set_link_state("a-c2", False)
        result = net.probe(direct)
        assert not result.success
        assert result.failure == "link-down"
        # Alternative paths via C1 still work.
        assert len(net.active_paths(A, B)) >= 2

    def test_rtt_reflects_link_latencies(self, diamond_network):
        direct = diamond_network.paths(A, B)[0]
        result = diamond_network.probe(direct)
        # 6 ms + 4 ms one way => ~20 ms RTT (plus processing).
        assert result.rtt_s == pytest.approx(0.020, abs=0.002)


class TestVerdictErrors:
    """Drop verdicts carry the SCMP error a real router would emit, with
    the failed interface attached for interface-scoped failures."""

    def test_expired_path_reports_path_expired_scmp(self, diamond_network):
        meta = diamond_network.paths(A, B)[0]
        late = meta.path.min_expiry() + 1
        result = diamond_network.dataplane.probe(meta.path, late)
        assert result.failure == "drop-expired"
        assert result.scmp.scmp_type is ScmpType.PARAMETER_PROBLEM
        assert result.scmp.code == CODE_PATH_EXPIRED
        # Expiry is not interface-scoped: no failed ifid, no revocation.
        assert result.failed_ifid is None
        assert result.revocation is None

    def test_revoked_interface_reports_ifid_and_signed_revocation(
        self, fresh_diamond_network
    ):
        net = fresh_diamond_network
        meta = net.paths(A, B)[0]  # A -> C2 -> B via a-c2
        (ia, ifid), _ = net.topology.link_attachments["a-c2"]
        minted = net.revoke_interface(ia, ifid, now=float(net.timestamp))
        result = net.probe(meta)
        assert result.failure == "drop-interface-down"
        assert result.failed_at == ia
        assert result.failed_ifid == ifid
        assert result.scmp.scmp_type is ScmpType.EXTERNAL_INTERFACE_DOWN
        assert result.scmp.info == ifid
        # The dataplane signs the revocation with the failing AS's key.
        assert result.revocation is not None
        assert result.revocation.key == minted.key
        assert net.verify_revocation(result.revocation)

    def test_unknown_interface_reports_ifid(self, fresh_diamond_network):
        net = fresh_diamond_network
        meta = net.paths(A, B)[0]
        (ia, ifid), _ = net.topology.link_attachments["a-c2"]
        # The AS reconfigured the interface away: the hop MAC still
        # verifies, but the egress no longer exists.
        del net.topology.get(ia).interfaces[ifid]
        result = net.probe(meta)
        assert result.failure == "drop-no-interface"
        assert result.failed_at == ia
        assert result.failed_ifid == ifid
        assert result.scmp.scmp_type is ScmpType.PARAMETER_PROBLEM
        assert result.scmp.code == CODE_UNKNOWN_PATH_INTERFACE
        assert result.scmp.info == ifid
        assert result.revocation is not None
        assert result.revocation.key == f"{ia}#{ifid}"


class TestEgressQueue:
    def _packet(self, meta):
        return ScionPacket(
            src=HostAddr(A, "10.0.0.1", 4000),
            dst=HostAddr(B, "10.0.0.2", 4001),
            path=meta.path,
            payload=b"ping",
        )

    def test_queue_overflow_drops_without_scmp(self, fresh_diamond_network):
        net = fresh_diamond_network
        sim = Simulator()
        meta = net.paths(A, B)[0]
        router = net.dataplane.routers[A]
        # Fill every egress queue at A so the next packet overflows.
        for ifid in router.topology.interfaces:
            for _ in range(router.queue_capacity):
                assert router.try_enqueue(ifid)
        drops, scmps = [], []
        net.dataplane.send(
            sim, self._packet(meta),
            on_delivered=lambda p: pytest.fail("should not deliver"),
            on_dropped=lambda p, reason, loc: drops.append((reason, loc)),
            on_scmp=lambda p, msg: scmps.append(msg),
        )
        sim.run_until_idle()
        assert len(drops) == 1
        reason, location = drops[0]
        assert reason == "drop-queue-full"
        assert location.ia == A and location.ifid > 0
        # Congestion is not failure: no SCMP, so no revocation cascade.
        assert scmps == []
        assert router.stats.queue_drops == 1

    def test_queue_overflow_emits_scmp_when_enabled(self, fresh_diamond_network):
        net = fresh_diamond_network
        net.dataplane.queue_full_scmp = True
        try:
            sim = Simulator()
            meta = net.paths(A, B)[0]
            router = net.dataplane.routers[A]
            for ifid in router.topology.interfaces:
                for _ in range(router.queue_capacity):
                    assert router.try_enqueue(ifid)
            drops, scmps = [], []
            net.dataplane.send(
                sim, self._packet(meta),
                on_delivered=lambda p: pytest.fail("should not deliver"),
                on_dropped=lambda p, reason, loc: drops.append((reason, loc)),
                on_scmp=lambda p, msg: scmps.append(msg),
            )
            sim.run_until_idle()
            assert [reason for reason, _ in drops] == ["drop-queue-full"]
            reason, location = drops[0]
            assert location.ia == A and location.ifid > 0
            # The sender learns it should back off...
            assert len(scmps) == 1
            msg = scmps[0]
            assert msg.scmp_type is ScmpType.DESTINATION_UNREACHABLE
            assert msg.code == CODE_QUEUE_FULL
            assert msg.origin_ia == str(A)
            assert msg.info == location.ifid
            # ...but congestion is not failure: no revocation is minted.
            assert revocation_from_scmp(msg, now=0.0) is None
        finally:
            net.dataplane.queue_full_scmp = False

    def test_queue_slots_released_after_transmit(self, fresh_diamond_network):
        net = fresh_diamond_network
        sim = Simulator()
        meta = net.paths(A, B)[0]
        delivered = []
        net.dataplane.send(
            sim, self._packet(meta), on_delivered=delivered.append
        )
        sim.run_until_idle()
        assert len(delivered) == 1
        for router in net.dataplane.routers.values():
            for ifid in router.topology.interfaces:
                assert router.queue_depth(ifid) == 0

    def test_queue_capacity_must_be_positive(self, fresh_diamond_network):
        from repro.scion.dataplane.router import BorderRouter
        net = fresh_diamond_network
        with pytest.raises(ValueError):
            BorderRouter(
                net.topology.get(A), net.forwarding_keys[A], queue_capacity=0
            )


class TestEventDrivenDelivery:
    def test_packet_delivered_with_correct_latency(self, diamond_network):
        sim = Simulator()
        meta = diamond_network.paths(A, B)[0]
        packet = ScionPacket(
            src=HostAddr(A, "10.0.0.1", 4000),
            dst=HostAddr(B, "10.0.0.2", 4001),
            path=meta.path,
            payload=b"ping",
        )
        delivered = []
        diamond_network.dataplane.send(
            sim, packet, on_delivered=lambda p: delivered.append(sim.now)
        )
        sim.run_until_idle()
        assert len(delivered) == 1
        analytic = diamond_network.probe(meta).one_way_s
        assert delivered[0] == pytest.approx(analytic, rel=0.01)

    def test_packet_dropped_on_down_link(self, fresh_diamond_network):
        net = fresh_diamond_network
        sim = Simulator()
        meta = net.paths(A, B)[0]
        net.set_link_state("a-c2", False)
        drops = []
        locations = []
        scmps = []
        packet = ScionPacket(
            src=HostAddr(A, "10.0.0.1", 4000),
            dst=HostAddr(B, "10.0.0.2", 4001),
            path=meta.path,
        )
        net.dataplane.send(
            sim, packet,
            on_delivered=lambda p: pytest.fail("should not deliver"),
            on_dropped=lambda p, reason, loc: (
                drops.append(reason), locations.append(loc)
            ),
            on_scmp=lambda p, msg: scmps.append(msg),
        )
        sim.run_until_idle()
        assert drops == ["link-down"]
        # The drop location names the AS and egress ifid where the packet died.
        assert locations[0].ia == A
        assert locations[0].ifid > 0
        # The router routed an SCMP interface-down error back to the source.
        assert len(scmps) == 1
        assert scmps[0].scmp_type is ScmpType.EXTERNAL_INTERFACE_DOWN
        assert scmps[0].origin_ia == str(A)
        assert scmps[0].info == locations[0].ifid

    def test_reply_travels_back(self, diamond_network):
        sim = Simulator()
        meta = diamond_network.paths(A, B)[0]
        packet = ScionPacket(
            src=HostAddr(A, "10.0.0.1", 4000),
            dst=HostAddr(B, "10.0.0.2", 4001),
            path=meta.path,
            payload=b"ping",
        )
        rtt = []

        def on_request_delivered(p):
            reply = p.reversed()
            diamond_network.dataplane.send(
                sim, reply, on_delivered=lambda r: rtt.append(sim.now)
            )

        diamond_network.dataplane.send(sim, packet, on_request_delivered)
        sim.run_until_idle()
        assert len(rtt) == 1
        assert rtt[0] == pytest.approx(diamond_network.probe(meta).rtt_s, rel=0.01)


class TestDispatcher:
    def test_single_shared_bottleneck(self):
        sim = Simulator()
        dispatcher = Dispatcher(per_packet_s=0.001)
        seen = {30100: 0, 30200: 0}
        dispatcher.register(30100, lambda p: seen.__setitem__(30100, seen[30100] + 1))
        dispatcher.register(30200, lambda p: seen.__setitem__(30200, seen[30200] + 1))
        for _ in range(10):
            dispatcher.receive(sim, 30100, "a")
            dispatcher.receive(sim, 30200, "b")
        sim.run_until_idle()
        # 20 packets at 1 ms each through ONE process: finishes at 20 ms.
        assert sim.now == pytest.approx(0.020)
        assert seen == {30100: 10, 30200: 10}

    def test_queue_overflow_drops(self):
        sim = Simulator()
        dispatcher = Dispatcher(per_packet_s=0.001, queue_limit=5)
        dispatcher.register(1, lambda p: None)
        for _ in range(10):
            dispatcher.receive(sim, 1, "x")
        sim.run_until_idle()
        assert dispatcher.stats.delivered == 5
        assert dispatcher.stats.dropped_queue_full == 5

    def test_unregistered_port_drops(self):
        sim = Simulator()
        dispatcher = Dispatcher()
        dispatcher.receive(sim, 9, "x")
        assert dispatcher.stats.dropped_no_listener == 1

    def test_duplicate_registration_rejected(self):
        dispatcher = Dispatcher()
        dispatcher.register(1, lambda p: None)
        with pytest.raises(DispatcherError):
            dispatcher.register(1, lambda p: None)

    def test_dispatcherless_scales_with_cores(self):
        sim = Simulator()
        stack = DispatcherlessStack(cores=4, per_packet_s=0.001)
        count = []
        for port in range(4):
            stack.register(port, lambda p: count.append(p))
        for port in range(4):
            for _ in range(10):
                stack.receive(sim, port, "x", flow_hash=port)
        sim.run_until_idle()
        # 4 cores x 10 packets x 1 ms in parallel: done at 10 ms, not 40.
        assert sim.now == pytest.approx(0.010)
        assert len(count) == 40

    def test_datapath_model_capacity_ordering(self):
        dispatcher = EndHostDataPathModel("dispatcher", cores=8)
        dispatcherless = EndHostDataPathModel("dispatcherless", cores=8)
        xdp = EndHostDataPathModel("xdp-bypass", cores=8)
        assert dispatcher.capacity_pps() < dispatcherless.capacity_pps() < xdp.capacity_pps()
        # The dispatcher does NOT scale with cores.
        assert (
            EndHostDataPathModel("dispatcher", cores=1).capacity_pps()
            == EndHostDataPathModel("dispatcher", cores=16).capacity_pps()
        )

    def test_datapath_model_goodput_saturates(self):
        model = EndHostDataPathModel("dispatcher")
        assert model.goodput_pps(10.0) == 10.0
        cap = model.capacity_pps()
        assert model.goodput_pps(cap * 10) == cap
        with pytest.raises(ValueError):
            model.goodput_pps(-1)
        with pytest.raises(ValueError):
            EndHostDataPathModel("warp-drive").capacity_pps()


class TestUnderlay:
    def make_campus(self):
        net = IntraAsNetwork()
        net.add_segment("dmz", kind="dmz")
        net.add_segment("wifi", kind="wifi")
        net.add_segment("lab", kind="vlan")
        net.connect_segments("dmz", "lab")
        net.connect_segments("lab", "wifi")
        net.add_host("10.0.0.2", "dmz")       # border router
        net.add_host("192.168.1.50", "wifi")  # student laptop
        net.add_host("10.1.0.9", "lab")
        return net

    def test_cross_segment_reachability(self):
        net = self.make_campus()
        assert net.reachable("192.168.1.50", "10.0.0.2")

    def test_latency_grows_with_segment_hops(self):
        net = self.make_campus()
        same = net.latency_s("10.1.0.9", "10.1.0.9")
        one_hop = net.latency_s("10.1.0.9", "10.0.0.2")
        two_hops = net.latency_s("192.168.1.50", "10.0.0.2")
        assert same < one_hop < two_hops

    def test_disconnected_segment_raises(self):
        net = self.make_campus()
        net.add_segment("island")
        net.add_host("172.16.0.1", "island")
        assert not net.reachable("172.16.0.1", "10.0.0.2")
        with pytest.raises(UnderlayError):
            net.latency_s("172.16.0.1", "10.0.0.2")

    def test_duplicate_host_rejected(self):
        net = self.make_campus()
        with pytest.raises(UnderlayError):
            net.add_host("10.0.0.2", "wifi")

    def test_unknown_entities_rejected(self):
        net = self.make_campus()
        with pytest.raises(UnderlayError):
            net.add_host("1.2.3.4", "nope")
        with pytest.raises(UnderlayError):
            net.segment_of("8.8.8.8")
        with pytest.raises(UnderlayError):
            net.connect_segments("dmz", "nope")
