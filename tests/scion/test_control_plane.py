"""Tests for beaconing, segment verification, path servers and combination.

These run on the small synthetic topologies from conftest.py and check the
control-plane invariants the paper relies on: authenticated segments,
loop-free beacons, multipath combination, shortcuts and peering.
"""

import dataclasses

import pytest

from repro.scion.addr import IA
from repro.scion.control.combinator import CombinatorError, combine_paths
from repro.scion.control.segments import Beacon, BeaconError
from repro.scion.crypto.rsa import RsaKeyPair
from tests.conftest import (
    make_diamond_topology,
    make_peering_topology,
    make_shortcut_topology,
)

A = IA.parse("71-100")
B = IA.parse("71-200")
C1 = IA.parse("71-1")
C2 = IA.parse("71-2")


class TestBeaconing:
    def test_beaconing_converges(self, diamond_network):
        assert diamond_network.beaconing.stats.rounds >= 1
        assert diamond_network.beaconing.stats.beacons_accepted > 0

    def test_no_invalid_beacons_in_honest_network(self, diamond_network):
        assert diamond_network.beaconing.stats.beacons_rejected_invalid == 0

    def test_leaf_has_up_segments_from_both_parents(self, diamond_network):
        ups = diamond_network.services[A].path_server.up_segments
        origins = {str(seg.origin_ia) for seg in ups}
        assert origins == {"71-1", "71-2"}
        # A is dual-homed: at least one up segment per parent link.
        assert len(ups) >= 2

    def test_core_segments_exist_in_both_directions(self, diamond_network):
        c12 = diamond_network.registry.core_segments(origin=C1, terminal=C2)
        c21 = diamond_network.registry.core_segments(origin=C2, terminal=C1)
        # Two parallel core links => two distinct segments per direction.
        assert len(c12) >= 2
        assert len(c21) >= 2

    def test_beacons_are_loop_free(self, diamond_network):
        for store in diamond_network.beaconing.down_stores.values():
            for beacon in store.all_beacons():
                sequence = [str(ia) for ia in beacon.as_sequence()]
                assert len(sequence) == len(set(sequence))

    def test_stored_beacons_verify(self, diamond_network):
        net = diamond_network
        resolver = Beacon.make_validating_key_resolver(
            net.cert_chain, net.trc_for, net.timestamp
        )
        for store in net.beaconing.down_stores.values():
            for beacon in store.all_beacons():
                beacon.verify(resolver, net.timestamp)

    def test_tampered_beacon_rejected(self, diamond_network):
        net = diamond_network
        resolver = Beacon.make_validating_key_resolver(
            net.cert_chain, net.trc_for, net.timestamp
        )
        beacon = net.services[A].path_server.up_segments[0]
        entry = beacon.entries[0]
        forged_hop = dataclasses.replace(entry.hop, cons_egress=99)
        forged_entry = dataclasses.replace(entry, hop=forged_hop)
        forged = Beacon(
            beacon.timestamp, beacon.seg_id,
            (forged_entry,) + beacon.entries[1:],
        )
        with pytest.raises(BeaconError):
            forged.verify(resolver, net.timestamp)

    def test_beacon_signed_by_wrong_key_rejected(self, diamond_network):
        net = diamond_network
        resolver = Beacon.make_validating_key_resolver(
            net.cert_chain, net.trc_for, net.timestamp
        )
        beacon = net.services[A].path_server.up_segments[0]
        mallory = RsaKeyPair.generate(seed=666)
        # Re-sign the last entry with a key that is not certified.
        stub = Beacon(beacon.timestamp, beacon.seg_id, beacon.entries[:-1])
        forged = stub.with_entry(
            dataclasses.replace(beacon.entries[-1], signature=0), mallory
        )
        with pytest.raises(BeaconError, match="bad signature"):
            forged.verify(resolver, net.timestamp)


class TestPathLookupAndCombination:
    def test_leaf_to_leaf_multipath(self, diamond_network):
        paths = diamond_network.paths(A, B)
        # A reaches B via C2 directly, and via C1 over both parallel core
        # links: at least 3 distinct paths.
        assert len(paths) >= 3
        fingerprints = {p.fingerprint for p in paths}
        assert len(fingerprints) == len(paths)

    def test_paths_sorted_shortest_first(self, diamond_network):
        paths = diamond_network.paths(A, B)
        lengths = [p.path.num_as_hops() for p in paths]
        assert lengths == sorted(lengths)

    def test_paths_to_core_as(self, diamond_network):
        paths = diamond_network.paths(A, C1)
        assert paths
        for meta in paths:
            assert meta.as_sequence[0] == A
            assert meta.as_sequence[-1] == C1

    def test_paths_from_core_as(self, diamond_network):
        paths = diamond_network.paths(C1, B)
        assert paths
        assert all(meta.as_sequence[0] == C1 for meta in paths)

    def test_core_to_core(self, diamond_network):
        paths = diamond_network.paths(C1, C2)
        assert len(paths) >= 2  # two parallel core links

    def test_same_as_returns_empty(self, diamond_network):
        assert diamond_network.paths(A, A) == []

    def test_all_paths_probe_successfully(self, diamond_network):
        for meta in diamond_network.paths(A, B):
            result = diamond_network.probe(meta)
            assert result.success, result.failure

    def test_latency_estimates_match_link_sums(self, diamond_network):
        # Shortest path A->C2->B: 6ms + 4ms plus processing overhead.
        shortest = diamond_network.paths(A, B)[0]
        assert shortest.latency_estimate_s == pytest.approx(0.010, abs=0.001)

    def test_combinator_rejects_foreign_segments(self, diamond_network):
        ups = diamond_network.services[A].path_server.up_segments
        with pytest.raises(CombinatorError):
            combine_paths(B, A, ups, [], [])


class TestShortcut:
    def test_shortcut_avoids_core(self, shortcut_network):
        a, b = IA.parse("71-100"), IA.parse("71-200")
        paths = shortcut_network.paths(a, b)
        assert paths
        shortest = paths[0]
        sequence = [str(ia) for ia in shortest.as_sequence]
        # The shortcut goes A -> M -> B without touching the core.
        assert sequence == ["71-100", "71-10", "71-200"]
        assert shortcut_network.probe(shortest).success

    def test_non_shortcut_path_also_exists(self, shortcut_network):
        a, b = IA.parse("71-100"), IA.parse("71-200")
        sequences = [
            [str(ia) for ia in meta.as_sequence]
            for meta in shortcut_network.paths(a, b)
        ]
        assert ["71-100", "71-10", "71-1", "71-10", "71-200"] in sequences

    def test_on_path_destination(self, shortcut_network):
        """Reaching your own parent uses the trivial one-hop path."""
        a, m = IA.parse("71-100"), IA.parse("71-10")
        paths = shortcut_network.paths(a, m)
        assert paths
        sequence = [str(ia) for ia in paths[0].as_sequence]
        assert sequence == ["71-100", "71-10"]
        assert shortcut_network.probe(paths[0]).success


class TestPeering:
    def test_peering_path_exists_and_probes(self, peering_network):
        a, b = IA.parse("71-100"), IA.parse("71-200")
        paths = peering_network.paths(a, b)
        sequences = [[str(ia) for ia in m.as_sequence] for m in paths]
        peer_route = ["71-100", "71-10", "71-20", "71-200"]
        assert peer_route in sequences
        meta = paths[sequences.index(peer_route)]
        assert peering_network.probe(meta).success

    def test_peering_path_is_fastest(self, peering_network):
        # The peer link (2 ms) beats the core detour (50 ms core link).
        a, b = IA.parse("71-100"), IA.parse("71-200")
        paths = peering_network.paths(a, b)
        fastest = min(paths, key=lambda m: m.latency_estimate_s)
        assert [str(ia) for ia in fastest.as_sequence] == [
            "71-100", "71-10", "71-20", "71-200",
        ]

    def test_core_route_also_available(self, peering_network):
        a, b = IA.parse("71-100"), IA.parse("71-200")
        sequences = [
            [str(ia) for ia in m.as_sequence]
            for m in peering_network.paths(a, b)
        ]
        assert ["71-100", "71-10", "71-1", "71-2", "71-20", "71-200"] in sequences

    def test_latency_estimate_matches_probe_on_every_path(self, peering_network):
        """The static estimate must charge the peer link at the peering
        boundary — twice the one-way estimate is the probed RTT."""
        a, b = IA.parse("71-100"), IA.parse("71-200")
        for meta in peering_network.paths(a, b):
            probe = peering_network.probe(meta)
            assert probe.success
            estimate = peering_network.dataplane.path_latency_s(meta.path)
            assert 2 * estimate == pytest.approx(probe.rtt_s)


class TestPathServer:
    def test_lookup_timing_and_cache(self, diamond_network):
        server = diamond_network.services[A].path_server
        server.invalidate_cache()
        _, _, _, timing1 = server.segments_for(B)
        assert not timing1.cached
        assert timing1.round_trips == 1
        assert timing1.latency_s > 0
        _, _, _, timing2 = server.segments_for(B)
        assert timing2.cached
        assert timing2.latency_s == 0.0

    def test_returns_immutable_tuples(self, fresh_diamond_network):
        """Callers must not be able to corrupt the server's cache."""
        server = fresh_diamond_network.services[A].path_server
        ups, cores, downs, _ = server.segments_for(B)
        assert isinstance(ups, tuple)
        assert isinstance(cores, tuple)
        assert isinstance(downs, tuple)
        ups2, cores2, downs2, timing = server.segments_for(B)
        assert timing.cached
        assert (ups2, cores2, downs2) == (ups, cores, downs)

    def test_cache_invalidated_by_later_registration(self, fresh_diamond_network):
        """A segment registered after a cached lookup must become visible:
        the cache is versioned against the registry mutation counter."""
        server = fresh_diamond_network.services[A].path_server
        _, _, downs, _ = server.segments_for(B)
        _, _, _, timing = server.segments_for(B)
        assert timing.cached
        version_before = server.registry.version
        server.registry.register_down(downs[0])
        assert server.registry.version > version_before
        _, _, downs2, timing2 = server.segments_for(B)
        assert not timing2.cached          # stale entry recomputed
        assert downs2 == downs             # re-registration deduplicates

    def test_cache_invalidated_by_up_segment_registration(
        self, fresh_diamond_network
    ):
        server = fresh_diamond_network.services[A].path_server
        ups, _, _, _ = server.segments_for(B)
        _, _, _, timing = server.segments_for(B)
        assert timing.cached
        server.register_up(ups[0])
        _, _, _, timing2 = server.segments_for(B)
        assert not timing2.cached

    def test_stats_stay_consistent_on_cache_hits(self, fresh_diamond_network):
        """A cached hit counts as a lookup too, so hit_rate <= 1."""
        server = fresh_diamond_network.services[A].path_server
        stats = server.registry.stats
        server.segments_for(B)
        lookups, hits = stats.lookups, stats.cache_hits
        server.segments_for(B)
        assert stats.lookups == lookups + 1
        assert stats.cache_hits == hits + 1
        assert 0.0 <= stats.hit_rate <= 1.0

    def test_remote_isd_lookup_costs_more(self):
        from repro.scion.topology import GlobalTopology, LinkType
        from repro.scion.network import ScionNetwork

        topo = GlobalTopology()
        c64, c71 = IA.parse("64-1"), IA.parse("71-1")
        leaf64, leaf71 = IA.parse("64-100"), IA.parse("71-100")
        topo.add_as(c64, is_core=True)
        topo.add_as(c71, is_core=True)
        topo.add_as(leaf64)
        topo.add_as(leaf71)
        topo.add_link(c64, c71, LinkType.CORE, 0.01)
        topo.add_link(leaf64, c64, LinkType.PARENT, 0.002)
        topo.add_link(leaf71, c71, LinkType.PARENT, 0.002)
        net = ScionNetwork(topo, seed=3)

        server = net.services[leaf64].path_server
        _, _, _, local = server.segments_for(c64)
        _, _, _, remote = server.segments_for(leaf71)
        assert remote.round_trips > local.round_trips
        assert remote.latency_s > local.latency_s
        # And the cross-ISD path actually works end to end.
        paths = net.paths(leaf64, leaf71)
        assert paths
        assert net.probe(paths[0]).success
