"""Control-plane overload wiring: path server, registry, and CA guards."""

import pytest

from repro.core.overload import OverloadGuard, OverloadRejected
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork
from repro.scion.topology import GlobalTopology, LinkType

A = IA.parse("71-100")
B = IA.parse("71-200")


def _diamond():
    topo = GlobalTopology()
    c1, c2 = IA.parse("71-1"), IA.parse("71-2")
    topo.add_as(c1, is_core=True, name="core1")
    topo.add_as(c2, is_core=True, name="core2")
    topo.add_as(A, name="leafA")
    topo.add_as(B, name="leafB")
    topo.add_link(c1, c2, LinkType.CORE, 0.010, link_name="c1c2")
    topo.add_link(A, c1, LinkType.PARENT, 0.005, link_name="a-c1")
    topo.add_link(A, c2, LinkType.PARENT, 0.006, link_name="a-c2")
    topo.add_link(B, c2, LinkType.PARENT, 0.004, link_name="b-c2")
    return topo


@pytest.fixture()
def network():
    return ScionNetwork(_diamond(), seed=9)


class TestPathServerGuard:
    def test_lookup_without_guard_is_unchanged(self, network):
        server = network.services[A].path_server
        ups, cores, downs, timing = server.segments_for(B, now=0.0)
        assert downs
        assert timing.latency_s >= 0.0

    def test_admitted_lookup_pays_the_queueing_delay(self, network):
        server = network.services[A].path_server
        server.segments_for(B, now=0.0)  # warm: cached base latency is 0
        guard = OverloadGuard(0.01, codel_target_s=None)
        guard.offer(10.0)
        guard.offer(10.0)  # 20 ms backlog ahead of the next lookup
        server.guard = guard
        _, _, _, timing = server.segments_for(B, now=10.0)
        assert timing.latency_s == pytest.approx(0.02)

    def test_refused_lookup_raises_overload_rejected(self, network):
        server = network.services[A].path_server
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.offer(0.0)
        server.guard = guard
        with pytest.raises(OverloadRejected):
            server.segments_for(B, now=0.0)

    def test_guard_ignored_without_now(self, network):
        server = network.services[A].path_server
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.offer(0.0)
        server.guard = guard
        # Legacy call sites pass no clock: admission must not engage.
        ups, cores, downs, _ = server.segments_for(B)
        assert downs
        assert guard.stats.offered == 1  # only the priming offer

    def test_network_paths_propagates_deadline(self, network):
        guard = OverloadGuard(0.01, codel_target_s=None)
        guard.offer(0.0)  # 10 ms backlog
        network.services[A].path_server.guard = guard
        with pytest.raises(OverloadRejected):
            network.paths(A, B, now=0.0, deadline_s=0.005)
        assert guard.stats.rejected_deadline == 1
        # Deadline-free lookups keep working (and can use the memo).
        assert network.paths(A, B)


class TestRegistryGuard:
    def test_shed_registration_is_dropped_silently(self, network):
        registry = network.registry
        segment = next(iter(registry.down_segments(A)))
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.offer(0.0)  # fill the queue
        registry.guard = guard
        try:
            version = registry.version
            registrations = registry.stats.registrations
            registry.register_down(segment, now=0.0)
            # Refused: no mutation, no registration counted — beaconing
            # re-registers on the next round anyway.
            assert registry.version == version
            assert registry.stats.registrations == registrations
            assert guard.stats.rejected_queue_full == 1
        finally:
            registry.guard = None

    def test_registration_without_clock_bypasses_guard(self, network):
        registry = network.registry
        segment = next(iter(registry.down_segments(A)))
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.offer(0.0)
        registry.guard = guard
        try:
            version = registry.version
            registry.register_down(segment)
            assert registry.version == version + 1
        finally:
            registry.guard = None


class TestCaGuard:
    def test_renewals_ride_through_as_critical(self, network):
        ca = network.isd_trust[71].ca
        guard = OverloadGuard(
            0.01, codel_target_s=0.005, codel_interval_s=0.05,
            queue_capacity=None, deadline_admission=False,
            critical_priority=0,
        )
        # Saturate far past the CoDel interval: bulk work would be shed,
        # but issuance goes through admission at priority 0.
        for _ in range(50):
            guard.offer(0.0)
        assert guard.offer(0.06).verdict.value == "shed-codel"
        ca.guard = guard
        try:
            service = network.services[A]
            issued = ca.issue_as_certificate(
                str(A), service.signing_key.public, now=0.06
            )
            assert issued.certificate.subject == str(A)
        finally:
            ca.guard = None

    def test_saturated_ca_rejects_when_bounded(self, network):
        ca = network.isd_trust[71].ca
        guard = OverloadGuard(0.01, queue_capacity=1, codel_target_s=None)
        guard.offer(0.0)
        ca.guard = guard
        try:
            service = network.services[A]
            with pytest.raises(OverloadRejected):
                ca.issue_as_certificate(
                    str(A), service.signing_key.public, now=0.0
                )
        finally:
            ca.guard = None
