"""Trust-material lifecycle: TRC rollover grace windows and cert expiry.

Exercises the TrustStore's typed errors and chaining rules, and the
network-level behaviour the paper's §4.5 depends on: segments signed
under a superseded TRC stay verifiable during the rollover grace window
and fail after it closes; beacons signed with expired certificates are
rejected until the certificates are renewed.
"""

import pytest

from repro.scion.addr import IA
from repro.scion.control.service import DEFAULT_TRC_GRACE_S, TrustStore
from repro.scion.crypto.trc import TrcError
from repro.scion.network import ScionNetwork
from repro.scion.topology import GlobalTopology, LinkType

A = IA.parse("71-10")
B = IA.parse("71-20")


def _topology():
    topo = GlobalTopology()
    c1, c2 = IA.parse("71-1"), IA.parse("71-2")
    topo.add_as(c1, is_core=True, name="core1")
    topo.add_as(c2, is_core=True, name="core2")
    topo.add_as(A, name="leafA")
    topo.add_as(B, name="leafB")
    topo.add_link(c1, c2, LinkType.CORE, 0.010, link_name="cc")
    topo.add_link(A, c1, LinkType.PARENT, 0.005, link_name="a-c1")
    topo.add_link(B, c2, LinkType.PARENT, 0.004, link_name="b-c2")
    return topo


@pytest.fixture
def network():
    return ScionNetwork(_topology(), seed=9)


class TestTrustStoreErrors:
    def test_latest_unknown_isd_raises_typed_error(self):
        store = TrustStore()
        with pytest.raises(TrcError, match="no TRC for ISD 42"):
            store.latest(42)

    def test_chain_unknown_isd_raises_typed_error(self):
        store = TrustStore()
        with pytest.raises(TrcError, match="no TRC for ISD 42"):
            store.chain(42)

    def test_verifying_trcs_unknown_isd_raises_typed_error(self):
        store = TrustStore()
        with pytest.raises(TrcError, match="no TRC"):
            store.verifying_trcs(42)

    def test_add_trc_rejects_non_extending_serial(self, network):
        base = network.isd_trust[71].trc
        with pytest.raises(TrcError, match="does not extend the chain"):
            network.trust_store.add_trc(base)  # same serial again

    def test_add_trc_rejects_stale_serial_after_rollover(self, network):
        t0 = float(network.timestamp)
        base = network.isd_trust[71].trc
        network.rollover_trc(71, now=t0 + 10.0)
        with pytest.raises(TrcError, match="does not extend the chain"):
            network.trust_store.add_trc(base)


class TestGraceWindow:
    def test_rollover_opens_grace_window(self, network):
        t0 = float(network.timestamp)
        old = network.isd_trust[71].trc
        successor = network.rollover_trc(71, now=t0 + 10.0)
        assert successor.serial == old.serial + 1
        store = network.trust_store
        inside = t0 + 10.0 + DEFAULT_TRC_GRACE_S / 2
        after = t0 + 10.0 + DEFAULT_TRC_GRACE_S + 1.0
        assert store.grace_open(71, inside)
        assert [t.serial for t in store.verifying_trcs(71, inside)] == [
            successor.serial, old.serial,
        ]
        assert not store.grace_open(71, after)
        assert [t.serial for t in store.verifying_trcs(71, after)] == [
            successor.serial,
        ]

    def test_rollover_without_timestamp_gives_no_grace(self, network):
        store = network.services[A].trust_store
        t0 = float(network.timestamp)
        trust = network.isd_trust[71]
        fresh = TrustStore()
        fresh.add_trc(trust.trc)
        successor = network.rollover_trc(71, now=t0 + 10.0, rotate_root=False)
        fresh.add_trc(successor)  # no `now`: predecessor gets no grace
        assert not fresh.grace_open(71, t0 + 10.5)
        # The network-distributed stores did get the rollover time.
        assert store.grace_open(71, t0 + 10.5)

    def test_predecessor_signed_segments_verify_during_grace(self, network):
        t0 = float(network.timestamp)
        baseline = len(network.paths(A, B, refresh=True))
        assert baseline > 0
        network.rollover_trc(71, now=t0 + 10.0)  # rotates the root key
        # Certificate chains still anchor in the *old* root: inside the
        # grace window beacons verify via the superseded TRC.
        inside = t0 + 10.0 + DEFAULT_TRC_GRACE_S / 2
        engine = network.run_beaconing(now=inside)
        assert engine.stats.beacons_rejected_invalid == 0
        assert len(network.paths(A, B, refresh=True)) == baseline

    def test_predecessor_signed_segments_fail_after_grace(self, network):
        t0 = float(network.timestamp)
        network.rollover_trc(71, now=t0 + 10.0)
        after = t0 + 10.0 + DEFAULT_TRC_GRACE_S + 1.0
        engine = network.run_beaconing(now=after)
        assert engine.stats.beacons_rejected_invalid > 0
        assert network.paths(A, B, refresh=True) == []

    def test_reissue_restores_verification_after_grace(self, network):
        t0 = float(network.timestamp)
        baseline = len(network.paths(A, B, refresh=True))
        network.rollover_trc(71, now=t0 + 10.0)
        network.reissue_trust_chains(71, now=t0 + 20.0)
        after = t0 + 10.0 + DEFAULT_TRC_GRACE_S + 1.0
        engine = network.run_beaconing(now=after)
        assert engine.stats.beacons_rejected_invalid == 0
        assert len(network.paths(A, B, refresh=True)) == baseline

    def test_no_rotation_rollover_needs_no_grace(self, network):
        t0 = float(network.timestamp)
        baseline = len(network.paths(A, B, refresh=True))
        network.rollover_trc(71, now=t0 + 10.0, rotate_root=False)
        after = t0 + 10.0 + DEFAULT_TRC_GRACE_S + 1.0
        engine = network.run_beaconing(now=after)
        # Same root key: chains verify directly against the successor TRC.
        assert engine.stats.beacons_rejected_invalid == 0
        assert len(network.paths(A, B, refresh=True)) == baseline


class TestCertificateExpiry:
    def test_expired_certificates_reject_beacons(self, network):
        t0 = float(network.timestamp)
        lifetime = network.isd_trust[71].ca.as_cert_lifetime_s
        past_expiry = t0 + lifetime + 1.0
        engine = network.run_beaconing(now=past_expiry)
        assert engine.stats.beacons_rejected_invalid > 0
        assert network.paths(A, B, refresh=True) == []

    def test_renewal_restores_beaconing(self, network):
        t0 = float(network.timestamp)
        baseline = len(network.paths(A, B, refresh=True))
        trust = network.isd_trust[71]
        past_expiry = t0 + trust.ca.as_cert_lifetime_s + 1.0
        for service in network.services.values():
            service.renew_certificate(trust.ca, now=past_expiry)
        engine = network.run_beaconing(now=past_expiry)
        assert engine.stats.beacons_rejected_invalid == 0
        assert len(network.paths(A, B, refresh=True)) == baseline
