"""Test package."""
