"""Unit tests for GlobalTopology construction and validation."""

import pytest

from repro.scion.addr import IA
from repro.scion.topology import GlobalTopology, LinkType, TopologyError

C1 = IA.parse("71-1")
C2 = IA.parse("71-2")
A = IA.parse("71-100")


def minimal():
    topo = GlobalTopology()
    topo.add_as(C1, is_core=True)
    topo.add_as(A)
    topo.add_link(A, C1, LinkType.PARENT, 0.01)
    return topo


class TestConstruction:
    def test_duplicate_as_rejected(self):
        topo = minimal()
        with pytest.raises(TopologyError, match="already present"):
            topo.add_as(A)

    def test_unknown_as_lookup_rejected(self):
        with pytest.raises(TopologyError, match="unknown AS"):
            minimal().get(C2)

    def test_duplicate_link_name_rejected(self):
        topo = minimal()
        topo.add_as(C2, is_core=True)
        topo.add_link(C1, C2, LinkType.CORE, 0.01, link_name="x")
        with pytest.raises(TopologyError, match="already exists"):
            topo.add_link(C1, C2, LinkType.CORE, 0.01, link_name="x")

    def test_auto_link_names_unique_for_parallel_links(self):
        topo = minimal()
        topo.add_as(C2, is_core=True)
        l1 = topo.add_link(C1, C2, LinkType.CORE, 0.01)
        l2 = topo.add_link(C1, C2, LinkType.CORE, 0.02)
        assert l1.name != l2.name

    def test_interface_ids_symmetric(self):
        topo = minimal()
        ((ia_a, ifid_a), (ia_b, ifid_b)) = topo.link_attachments["71-100--71-1"]
        iface_a = topo.get(ia_a).interfaces[ifid_a]
        iface_b = topo.get(ia_b).interfaces[ifid_b]
        assert iface_a.remote_ifid == iface_b.ifid
        assert iface_b.remote_ifid == iface_a.ifid
        assert iface_a.link_type is LinkType.PARENT
        assert iface_b.link_type is LinkType.CHILD

    def test_global_interface_id_format(self):
        topo = minimal()
        iface = next(iter(topo.get(A).interfaces.values()))
        assert iface.global_id(A) == f"{A}#{iface.ifid}"

    def test_neighbors_by_link_type(self):
        topo = minimal()
        assert topo.get(A).neighbors(LinkType.PARENT) == [C1]
        assert topo.get(C1).neighbors(LinkType.CHILD) == [A]
        assert topo.get(A).neighbors(LinkType.CORE) == []

    def test_link_between(self):
        topo = minimal()
        iface = next(iter(topo.get(A).interfaces.values()))
        assert topo.link_between(A, iface.ifid) is not None
        assert topo.link_between(A, 99) is None

    def test_core_ases_per_isd(self):
        topo = minimal()
        topo.add_as(IA.parse("64-1"), is_core=True)
        assert topo.core_ases() == [IA.parse("64-1"), C1]
        assert topo.core_ases(isd=71) == [C1]
        assert topo.isds() == [64, 71]


class TestValidation:
    def test_valid_topology_passes(self):
        minimal().validate()

    def test_orphan_leaf_rejected(self):
        topo = GlobalTopology()
        topo.add_as(C1, is_core=True)
        topo.add_as(A)  # no parent link
        with pytest.raises(TopologyError, match="no parent link"):
            topo.validate()

    def test_core_with_parent_rejected(self):
        topo = GlobalTopology()
        topo.add_as(C1, is_core=True)
        topo.add_as(C2, is_core=True)
        topo.add_link(C1, C2, LinkType.PARENT, 0.01)
        with pytest.raises(TopologyError, match="must not have parent"):
            topo.validate()
