"""Unit tests for the beacon store's selection policy."""

import pytest

from repro.scion.addr import IA
from repro.scion.control.beaconing import BeaconStore
from repro.scion.control.segments import ASEntry, Beacon
from repro.scion.crypto.keys import SymmetricKey
from repro.scion.crypto.rsa import RsaKeyPair
from repro.scion.path import HopField

KEY = SymmetricKey(b"s" * 32)
SIGNER = RsaKeyPair.generate(seed=5)
TS = 1000


def make_beacon(origin_asn: int, hop_path):
    """Build a beacon through the given (asn, ingress, egress) hops."""
    beacon = Beacon.originate(
        IA(71, origin_asn), KEY, SIGNER, TS, egress_ifid=hop_path[0][2]
    )
    beta = beacon.next_beta()
    for asn, ingress, egress in hop_path[1:]:
        hop = HopField.create(
            IA(71, asn), KEY, TS, cons_ingress=ingress,
            cons_egress=egress, beta=beta,
        )
        beacon = beacon.with_entry(
            ASEntry(ia=IA(71, asn), hop=hop), SIGNER
        )
        beta = beacon.entries[-1].hop.next_beta()
    return beacon


class TestBeaconStore:
    def test_insert_dedups_by_interfaces(self):
        store = BeaconStore()
        beacon = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        assert store.insert(beacon)
        assert not store.insert(beacon)
        assert len(store.all_beacons()) == 1

    def test_capacity_eviction_prefers_shorter(self):
        store = BeaconStore(capacity_per_origin=2)
        long1 = make_beacon(1, [(1, 0, 5), (2, 3, 7), (3, 2, 0)])
        long2 = make_beacon(1, [(1, 0, 6), (2, 4, 8), (3, 1, 0)])
        short = make_beacon(1, [(1, 0, 5), (3, 9, 0)])
        assert store.insert(long1)
        assert store.insert(long2)
        assert store.insert(short)  # evicts one of the long ones
        lengths = sorted(len(b) for b in store.all_beacons())
        assert lengths == [2, 3]

    def test_newcomer_longer_than_worst_dropped_at_capacity(self):
        store = BeaconStore(capacity_per_origin=1)
        short = make_beacon(1, [(1, 0, 5), (3, 9, 0)])
        long = make_beacon(1, [(1, 0, 6), (2, 4, 8), (3, 1, 0)])
        assert store.insert(short)
        assert not store.insert(long)
        assert store.all_beacons() == [short]

    def test_equal_length_newcomer_dropped_at_capacity(self):
        """A newcomer only displaces a *strictly longer* beacon: churning
        between equal-length beacons would repeatedly invalidate
        registered segments for no path-quality gain."""
        store = BeaconStore(capacity_per_origin=1)
        first = make_beacon(1, [(1, 0, 5), (3, 9, 0)])
        same_length = make_beacon(1, [(1, 0, 6), (3, 8, 0)])
        assert store.insert(first)
        assert not store.insert(same_length)
        assert store.all_beacons() == [first]

    def test_eviction_removes_exactly_the_longest(self):
        store = BeaconStore(capacity_per_origin=2)
        medium = make_beacon(1, [(1, 0, 5), (2, 3, 7), (3, 2, 0)])
        monster = make_beacon(
            1, [(1, 0, 6), (4, 1, 2), (5, 3, 4), (3, 1, 0)]
        )
        short = make_beacon(1, [(1, 0, 7), (3, 9, 0)])
        assert store.insert(medium)
        assert store.insert(monster)
        assert store.insert(short)
        survivors = store.all_beacons()
        assert monster not in survivors
        assert medium in survivors and short in survivors

    def test_eviction_tie_breaks_deterministically(self):
        """Two equally-long victims: the one with the larger fingerprint
        goes, whichever insertion order produced the bucket."""
        hop_a = [(1, 0, 5), (2, 3, 7), (3, 2, 0)]
        hop_b = [(1, 0, 6), (2, 4, 8), (3, 1, 0)]
        survivors = []
        for order in ([hop_a, hop_b], [hop_b, hop_a]):
            store = BeaconStore(capacity_per_origin=2)
            for hops in order:
                assert store.insert(make_beacon(1, hops))
            assert store.insert(make_beacon(1, [(1, 0, 9), (3, 9, 0)]))
            survivors.append(
                sorted(b.interface_fingerprint() for b in store.all_beacons())
            )
        assert survivors[0] == survivors[1]

    def test_select_bounds_detour(self):
        store = BeaconStore()
        short = make_beacon(1, [(1, 0, 5), (2, 1, 0)])                 # 2 hops
        medium = make_beacon(1, [(1, 0, 6), (3, 2, 4), (2, 9, 0)])    # 3 hops
        monster = make_beacon(
            1,
            [(1, 0, 7), (4, 1, 2), (5, 3, 4), (6, 5, 6), (7, 7, 8),
             (2, 11, 0)],
        )  # 6 hops: detour 4 over the shortest
        for beacon in (short, medium, monster):
            store.insert(beacon)
        selected = store.select(IA(71, 1), k=10, max_detour=2)
        assert short in selected
        assert medium in selected
        assert monster not in selected
        # Without the bound, everything comes back.
        assert len(store.select(IA(71, 1), k=10, max_detour=10)) == 3

    def test_select_prefers_interface_diversity(self):
        store = BeaconStore()
        base = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        clone_ish = make_beacon(1, [(1, 0, 5), (2, 4, 0)])   # shares egress 5
        diverse = make_beacon(1, [(1, 0, 6), (2, 9, 0)])     # all-new ifaces
        for beacon in (base, clone_ish, diverse):
            store.insert(beacon)
        top2 = store.select(IA(71, 1), k=2)
        # The diverse beacon always survives; the two near-clones share
        # interfaces, so at most one of them is kept.
        assert diverse in top2
        assert sum(1 for b in (base, clone_ish) if b in top2) == 1

    def test_origins_sorted(self):
        store = BeaconStore()
        store.insert(make_beacon(2, [(2, 0, 5), (9, 3, 0)]))
        store.insert(make_beacon(1, [(1, 0, 5), (9, 4, 0)]))
        assert store.origins() == [IA(71, 1), IA(71, 2)]

    def test_beacons_from_unknown_origin_empty(self):
        assert BeaconStore().beacons_from(IA(71, 42)) == []


EXPIRY = TS + 24 * 3600  # hop fields default to a 24 h lifetime


class TestExpiryPurge:
    def test_purge_expired_drops_and_counts(self):
        store = BeaconStore()
        store.insert(make_beacon(1, [(1, 0, 5), (2, 3, 0)]))
        store.insert(make_beacon(2, [(2, 0, 5), (9, 3, 0)]))
        assert store.purge_expired(EXPIRY - 1) == 0
        assert store.purge_expired(EXPIRY + 1) == 2
        assert store.all_beacons() == []
        assert store.origins() == []
        assert store.stats.purged_expired == 2

    def test_insert_rejects_expired_newcomer(self):
        store = BeaconStore()
        beacon = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        assert not store.insert(beacon, now=EXPIRY + 1)
        assert store.all_beacons() == []
        assert store.stats.purged_expired == 1
        assert store.insert(beacon, now=EXPIRY - 1)

    def test_lookups_purge_when_given_a_clock(self):
        store = BeaconStore()
        store.insert(make_beacon(1, [(1, 0, 5), (2, 3, 0)]))
        assert store.all_beacons(now=EXPIRY - 1)
        assert store.beacons_from(IA(71, 1), now=EXPIRY - 1)
        assert store.all_beacons(now=EXPIRY + 1) == []
        assert store.stats.purged_expired == 1

    def test_select_purges_when_given_a_clock(self):
        store = BeaconStore()
        store.insert(make_beacon(1, [(1, 0, 5), (2, 3, 0)]))
        assert store.select(IA(71, 1), k=5, now=EXPIRY - 1)
        assert store.select(IA(71, 1), k=5, now=EXPIRY + 1) == []
        assert store.select_all(k_per_origin=5, now=EXPIRY + 1) == []

    def test_expires_at_is_min_hop_expiry(self):
        beacon = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        assert beacon.expires_at() == float(
            min(entry.hop.expiry for entry in beacon.entries)
        )


class TestSnapshotRestore:
    def test_roundtrip_preserves_beacons(self):
        store = BeaconStore()
        b1 = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        b2 = make_beacon(2, [(2, 0, 5), (9, 3, 0)])
        store.insert(b1)
        store.insert(b2)
        snapshot = store.snapshot()
        store.clear()
        assert store.all_beacons() == []
        store.restore(snapshot)
        assert sorted(
            b.interface_fingerprint() for b in store.all_beacons()
        ) == sorted(b.interface_fingerprint() for b in (b1, b2))

    def test_snapshot_is_isolated_from_later_inserts(self):
        store = BeaconStore()
        store.insert(make_beacon(1, [(1, 0, 5), (2, 3, 0)]))
        snapshot = store.snapshot()
        store.insert(make_beacon(2, [(2, 0, 5), (9, 3, 0)]))
        store.restore(snapshot)
        assert store.origins() == [IA(71, 1)]


class TestSegmentRegistryLifecycle:
    def _registry(self):
        from repro.scion.control.path_server import SegmentRegistry

        return SegmentRegistry()

    def test_register_rejects_expired_segment(self):
        registry = self._registry()
        segment = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        version = registry.version
        registry.register_down(segment, now=EXPIRY + 1)
        assert registry.down_segments(segment.terminal_ia) == []
        assert registry.version == version  # rejected: no mutation
        assert registry.stats.purged_expired == 1

    def test_purge_expired_bumps_version(self):
        registry = self._registry()
        segment = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        registry.register_down(segment)
        version = registry.version
        assert registry.purge_expired(EXPIRY - 1) == 0
        assert registry.version == version
        assert registry.purge_expired(EXPIRY + 1) == 1
        assert registry.version > version
        assert registry.down_segments(segment.terminal_ia) == []

    def test_lookup_with_clock_purges(self):
        registry = self._registry()
        core_seg = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        registry.register_core(core_seg)
        assert registry.core_segments(now=EXPIRY - 1)
        assert registry.core_segments(now=EXPIRY + 1) == []
        assert registry.stats.purged_expired == 1

    def test_snapshot_restore_roundtrip(self):
        registry = self._registry()
        down = make_beacon(1, [(1, 0, 5), (2, 3, 0)])
        core = make_beacon(3, [(3, 0, 5), (4, 3, 0)])
        registry.register_down(down)
        registry.register_core(core)
        snapshot = registry.snapshot()
        version = registry.version
        registry.clear()
        assert registry.version > version
        assert registry.down_segments(down.terminal_ia) == []
        registry.restore(snapshot)
        assert len(registry.down_segments(down.terminal_ia)) == 1
        assert len(registry.core_segments()) == 1
