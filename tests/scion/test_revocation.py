"""Revocation tokens and the quarantine lifecycle.

These are the acceptance assertions of the revocation pipeline: a
quarantined segment is never returned by a lookup before the revocation
expires, reappears after TTL expiry or a re-validating beacon, and the
quarantine survives supervisor restarts (warm and cold) via ledger replay.
"""

import dataclasses

import pytest

from repro.core.supervisor import Supervisor
from repro.scion.addr import IA
from repro.scion.crypto.rsa import RsaKeyPair
from repro.scion.network import ScionNetwork
from repro.scion.revocation import (
    DEFAULT_REVOCATION_TTL_S,
    Revocation,
    RevocationError,
    revocation_from_scmp,
)
from repro.scion.scmp import (
    echo_request,
    interface_down,
    path_expired,
    unknown_path_interface,
)
from repro.scion.topology import GlobalTopology, LinkType, TopologyError

A = IA.parse("71-100")
B = IA.parse("71-200")
C2 = IA.parse("71-2")


def _a_side(network, link_name="a-c2"):
    """AS and ifid of the A end of a link, plus the global interface key."""
    (ia, ifid), _ = network.topology.link_attachments[link_name]
    return ia, ifid, f"{ia}#{ifid}"


class TestRevocationToken:
    def test_key_and_expiry(self):
        rev = Revocation(ia=A, ifid=3, issued_at=10.0, ttl_s=5.0)
        assert rev.key == "71-100#3"
        assert rev.expires_at() == 15.0
        assert rev.active(14.999) and not rev.active(15.0)

    def test_rejects_bogus_fields(self):
        with pytest.raises(RevocationError):
            Revocation(ia=A, ifid=0, issued_at=0.0)
        with pytest.raises(RevocationError):
            Revocation(ia=A, ifid=1, issued_at=0.0, ttl_s=0.0)

    def test_sign_and_verify(self):
        key = RsaKeyPair.generate(seed=41)
        rev = Revocation(ia=A, ifid=3, issued_at=1.0).signed_by(key)
        assert rev.verify(key.public)

    def test_unsigned_never_verifies(self):
        key = RsaKeyPair.generate(seed=41)
        rev = Revocation(ia=A, ifid=3, issued_at=1.0)
        assert rev.signature == 0
        assert not rev.verify(key.public)

    def test_wrong_key_or_tampered_payload_fails(self):
        key, other = RsaKeyPair.generate(seed=41), RsaKeyPair.generate(seed=42)
        rev = Revocation(ia=A, ifid=3, issued_at=1.0).signed_by(key)
        assert not rev.verify(other.public)
        forged = dataclasses.replace(rev, ifid=4)
        assert not forged.verify(key.public)


class TestRevocationFromScmp:
    def test_interface_down_yields_revocation(self):
        rev = revocation_from_scmp(interface_down(str(A), 3), now=7.0, ttl_s=4.0)
        assert rev == Revocation(ia=A, ifid=3, issued_at=7.0, ttl_s=4.0)

    def test_unknown_path_interface_yields_revocation(self):
        rev = revocation_from_scmp(unknown_path_interface(str(A), 9), now=1.0)
        assert rev.key == "71-100#9"
        assert rev.ttl_s == DEFAULT_REVOCATION_TTL_S

    def test_non_interface_errors_yield_none(self):
        assert revocation_from_scmp(echo_request(1, 1), now=0.0) is None
        assert revocation_from_scmp(path_expired(str(A)), now=0.0) is None
        assert revocation_from_scmp(interface_down("", 3), now=0.0) is None
        assert revocation_from_scmp(interface_down(str(A), 0), now=0.0) is None

    def test_malformed_origin_raises(self):
        with pytest.raises(RevocationError):
            revocation_from_scmp(interface_down("not-an-ia", 3), now=0.0)


class TestQuarantineLifecycle:
    def test_quarantined_segment_never_served_before_expiry(
        self, fresh_diamond_network
    ):
        net = fresh_diamond_network
        t0 = float(net.timestamp)
        ia, ifid, key = _a_side(net)
        before = net.paths(A, B, refresh=True)
        assert any(key in m.interfaces for m in before)

        net.revoke_interface(ia, ifid, now=t0, ttl_s=30.0)
        assert net.registry.quarantined_count() > 0
        for t in (t0, t0 + 10.0, t0 + 29.9):
            net.registry.active_revocations(now=t)  # lazy purge at t
            served = net.paths(A, B, refresh=True)
            assert served, "other paths must keep working"
            assert all(key not in m.interfaces for m in served)

    def test_quarantine_lifts_after_ttl_expiry(self, fresh_diamond_network):
        net = fresh_diamond_network
        t0 = float(net.timestamp)
        ia, ifid, key = _a_side(net)
        net.revoke_interface(ia, ifid, now=t0, ttl_s=5.0)
        assert all(
            key not in m.interfaces for m in net.paths(A, B, refresh=True)
        )
        # Past the TTL the lazy purge lifts the quarantine and bumps the
        # registry version, so even cached lookups recompute.
        net.registry.active_revocations(now=t0 + 5.1)
        assert net.registry.stats.revocations_expired == 1
        assert net.registry.quarantined_count() == 0
        assert any(key in m.interfaces for m in net.paths(A, B))

    def test_fresh_beacon_revalidates_and_reserves(self, fresh_diamond_network):
        net = fresh_diamond_network
        t0 = float(net.timestamp)
        ia, ifid, key = _a_side(net)
        net.revoke_interface(ia, ifid, now=t0, ttl_s=600.0)
        assert all(
            key not in m.interfaces for m in net.paths(A, B, refresh=True)
        )
        # Beacons built after the revocation cross the interface: proof of
        # life, so the quarantine lifts long before the TTL would expire.
        net.run_beaconing(now=t0 + 1.0)
        assert net.registry.stats.revocations_cleared_by_beacon >= 1
        assert net.registry.active_revocations() == []
        assert any(key in m.interfaces for m in net.paths(A, B, refresh=True))

    def test_repeat_revocation_keeps_longer_lived_token(
        self, fresh_diamond_network
    ):
        net = fresh_diamond_network
        t0 = float(net.timestamp)
        ia, ifid, _ = _a_side(net)
        long = net.revoke_interface(ia, ifid, now=t0, ttl_s=30.0)
        version = net.registry.version
        short = Revocation(
            ia=ia, ifid=ifid, issued_at=t0, ttl_s=1.0
        ).signed_by(net.signing_keys[ia])
        assert net.services[ia].path_server.revoke(short, now=t0) == 0
        assert net.registry.version == version
        assert net.registry.active_revocations() == [long]

    def test_revoking_unknown_as_raises(self, fresh_diamond_network):
        with pytest.raises(TopologyError):
            fresh_diamond_network.revoke_interface(IA.parse("99-9"), 1, now=0.0)


class TestSignatureEnforcement:
    def test_unsigned_revocation_rejected_by_path_server(
        self, fresh_diamond_network
    ):
        net = fresh_diamond_network
        t0 = float(net.timestamp)
        ia, ifid, _ = _a_side(net)
        rev = Revocation(ia=ia, ifid=ifid, issued_at=t0)
        assert net.services[ia].path_server.revoke(rev, now=t0) == 0
        assert net.registry.stats.revocations_rejected == 1
        assert net.registry.active_revocations() == []

    def test_revocation_signed_by_wrong_as_rejected(self, fresh_diamond_network):
        net = fresh_diamond_network
        t0 = float(net.timestamp)
        ia, ifid, _ = _a_side(net)
        forged = Revocation(ia=ia, ifid=ifid, issued_at=t0).signed_by(
            net.signing_keys[B]  # B cannot revoke A's interfaces
        )
        assert net.services[ia].path_server.revoke(forged, now=t0) == 0
        assert net.registry.stats.revocations_rejected == 1

    def test_expired_revocation_rejected(self, fresh_diamond_network):
        net = fresh_diamond_network
        ia, ifid, _ = _a_side(net)
        stale = Revocation(
            ia=ia, ifid=ifid, issued_at=0.0, ttl_s=1.0
        ).signed_by(net.signing_keys[ia])
        assert net.services[ia].path_server.revoke(stale, now=5.0) == 0
        assert net.registry.active_revocations() == []


def _diamond():
    topo = GlobalTopology()
    c1 = IA.parse("71-1")
    topo.add_as(c1, is_core=True, name="core1")
    topo.add_as(C2, is_core=True, name="core2")
    topo.add_as(A, name="leafA")
    topo.add_as(B, name="leafB")
    topo.add_link(c1, C2, LinkType.CORE, 0.010, link_name="c1c2-a")
    topo.add_link(c1, C2, LinkType.CORE, 0.020, link_name="c1c2-b")
    topo.add_link(A, c1, LinkType.PARENT, 0.005, link_name="a-c1")
    topo.add_link(A, C2, LinkType.PARENT, 0.006, link_name="a-c2")
    topo.add_link(B, C2, LinkType.PARENT, 0.004, link_name="b-c2")
    return topo


def _run_until_serving(supervisor, name, start, step=0.5, limit=40):
    t = start
    for _ in range(limit):
        t = round(t + step, 9)
        supervisor.tick(t)
        if supervisor.is_serving(name, t):
            return t
    raise AssertionError(f"{name} never recovered")


class TestQuarantineSurvivesRestart:
    """Restart must not resurrect quarantined paths: the supervisor replays
    its revocation ledger after restoring (warm) or re-beaconing (cold)."""

    def _crash_and_recover(self, warm):
        network = ScionNetwork(_diamond(), seed=7)
        supervisor = Supervisor(
            network, check_interval_s=0.5, checkpoint_interval_s=1.0,
            beacon_round_s=0.5, warm_restore_s=0.05, warm_restart=warm,
        )
        t0 = float(network.timestamp)
        supervisor.tick(t0)  # checkpoint taken BEFORE the revocation
        ia, ifid, key = _a_side(network)
        network.revoke_interface(ia, ifid, now=t0 + 0.1, ttl_s=600.0)
        assert all(
            key not in m.interfaces
            for m in network.paths(A, B, refresh=True)
        )
        supervisor.crash(Supervisor.CONTROL, t0 + 1.0)
        _run_until_serving(supervisor, Supervisor.CONTROL, t0 + 1.0)
        return network, supervisor, key

    def test_warm_restart_replays_pending_revocations(self):
        network, supervisor, key = self._crash_and_recover(warm=True)
        assert supervisor.stats.warm_restarts == 1
        assert supervisor.stats.revocations_replayed >= 1
        served = network.paths(A, B, refresh=True)
        assert served
        assert all(key not in m.interfaces for m in served)

    def test_cold_restart_replays_after_rebeaconing(self):
        # Cold restart re-beacons with post-revocation timestamps; the
        # replay runs after registration, so the quarantine still sticks.
        network, supervisor, key = self._crash_and_recover(warm=False)
        assert supervisor.stats.cold_restarts == 1
        assert supervisor.stats.revocations_replayed >= 1
        served = network.paths(A, B, refresh=True)
        assert served
        assert all(key not in m.interfaces for m in served)

    def test_expired_ledger_entries_are_not_replayed(self):
        network = ScionNetwork(_diamond(), seed=7)
        supervisor = Supervisor(network, check_interval_s=0.5)
        t0 = float(network.timestamp)
        ia, ifid, _ = _a_side(network)
        network.revoke_interface(ia, ifid, now=t0, ttl_s=1.0)
        assert supervisor.pending_revocations(t0 + 0.5)
        assert supervisor.pending_revocations(t0 + 2.0) == []
