"""Tests for TRCs (chaining/updates) and the control-plane PKI."""

import dataclasses

import pytest

from repro.scion.crypto.ca import CaService
from repro.scion.crypto.cppki import (
    Certificate,
    CertificateError,
    CertType,
    make_self_signed_root,
    verify_chain,
)
from repro.scion.crypto.rsa import RsaKeyPair
from repro.scion.crypto.trc import Trc, TrcError, verify_trc_chain

NOW = 1_000_000.0
LATER = NOW + 365 * 24 * 3600


@pytest.fixture(scope="module")
def roots():
    return {
        "root-a": RsaKeyPair.generate(seed=1),
        "root-b": RsaKeyPair.generate(seed=2),
        "root-c": RsaKeyPair.generate(seed=3),
    }


def base_trc(roots, quorum=2, serial=1):
    return Trc(
        isd=71,
        serial=serial,
        base_serial=1,
        not_before=NOW,
        not_after=LATER,
        core_ases=("71-1", "71-2"),
        authoritative_ases=("71-1",),
        root_keys={name: key.public for name, key in roots.items()},
        voting_quorum=quorum,
        description="test TRC",
    )


class TestTrc:
    def test_base_trc_with_quorum_verifies(self, roots):
        trc = base_trc(roots).with_votes(
            {"root-a": roots["root-a"], "root-b": roots["root-b"]}
        )
        trc.verify_base()

    def test_insufficient_quorum_rejected(self, roots):
        trc = base_trc(roots).with_votes({"root-a": roots["root-a"]})
        with pytest.raises(TrcError, match="quorum"):
            trc.verify_base()

    def test_unknown_voter_rejected(self, roots):
        trc = base_trc(roots).with_votes(
            {"root-a": roots["root-a"], "mallory": RsaKeyPair.generate(seed=9)}
        )
        with pytest.raises(TrcError, match="unknown voter"):
            trc.verify_base()

    def test_bad_signature_rejected(self, roots):
        trc = base_trc(roots).with_votes(
            {"root-a": roots["root-a"], "root-b": RsaKeyPair.generate(seed=9)}
        )
        with pytest.raises(TrcError, match="invalid signature"):
            trc.verify_base()

    def test_update_chain(self, roots):
        trc1 = base_trc(roots).with_votes(
            {"root-a": roots["root-a"], "root-b": roots["root-b"]}
        )
        trc2 = dataclasses.replace(
            base_trc(roots, serial=2), votes=()
        ).with_votes({"root-a": roots["root-a"], "root-c": roots["root-c"]})
        trc2.verify_update(trc1)
        verify_trc_chain([trc1, trc2])

    def test_update_must_be_consecutive(self, roots):
        trc1 = base_trc(roots).with_votes(
            {"root-a": roots["root-a"], "root-b": roots["root-b"]}
        )
        trc3 = base_trc(roots, serial=3).with_votes(
            {"root-a": roots["root-a"], "root-b": roots["root-b"]}
        )
        with pytest.raises(TrcError, match="non-consecutive"):
            trc3.verify_update(trc1)

    def test_update_votes_checked_against_predecessor_voters(self, roots):
        """A TRC update signed only by keys NOT in the predecessor fails —
        this is the chaining property that lets clients trust new TRCs."""
        trc1 = base_trc(roots).with_votes(
            {"root-a": roots["root-a"], "root-b": roots["root-b"]}
        )
        rogue = {"rogue-1": RsaKeyPair.generate(seed=21),
                 "rogue-2": RsaKeyPair.generate(seed=22)}
        trc2 = Trc(
            isd=71, serial=2, base_serial=1,
            not_before=NOW, not_after=LATER,
            core_ases=("71-666",), authoritative_ases=("71-666",),
            root_keys={n: k.public for n, k in rogue.items()},
            voting_quorum=2,
        ).with_votes(rogue)
        with pytest.raises(TrcError):
            trc2.verify_update(trc1)

    def test_validity_window(self, roots):
        trc = base_trc(roots)
        assert trc.valid_at(NOW)
        assert not trc.valid_at(NOW - 1)
        assert not trc.valid_at(LATER)

    def test_impossible_quorum_rejected_at_construction(self, roots):
        with pytest.raises(TrcError):
            base_trc(roots, quorum=4)
        with pytest.raises(TrcError):
            base_trc(roots, quorum=0)

    def test_empty_chain_rejected(self):
        with pytest.raises(TrcError):
            verify_trc_chain([])


@pytest.fixture(scope="module")
def pki(roots):
    """root -> CA -> AS chain plus the anchoring TRC."""
    root_key = roots["root-a"]
    root_cert = make_self_signed_root("root-a", root_key, NOW, LATER)
    ca_key = RsaKeyPair.generate(seed=50)
    ca_cert = Certificate(
        subject="ca-71", cert_type=CertType.CA, public_key=ca_key.public,
        issuer="root-a", not_before=NOW, not_after=LATER, serial=1,
    ).signed_by(root_key)
    trc = base_trc(roots).with_votes(
        {"root-a": roots["root-a"], "root-b": roots["root-b"]}
    )
    ca = CaService("ca-71", ca_key, ca_cert, root_cert)
    return dict(root_key=root_key, root_cert=root_cert, ca=ca, trc=trc)


class TestCertChains:
    def test_valid_chain_verifies(self, pki):
        as_key = RsaKeyPair.generate(seed=60)
        issued = pki["ca"].issue_as_certificate("71-100", as_key.public, NOW)
        verify_chain(issued.chain(), pki["trc"], NOW + 10)

    def test_expired_as_cert_rejected(self, pki):
        as_key = RsaKeyPair.generate(seed=61)
        issued = pki["ca"].issue_as_certificate(
            "71-101", as_key.public, NOW, lifetime_s=3600
        )
        with pytest.raises(CertificateError, match="expired"):
            verify_chain(issued.chain(), pki["trc"], NOW + 7200)

    def test_root_not_in_trc_rejected(self, pki, roots):
        foreign_root_key = RsaKeyPair.generate(seed=70)
        foreign_root = make_self_signed_root("evil-root", foreign_root_key, NOW, LATER)
        ca_key = RsaKeyPair.generate(seed=71)
        ca_cert = Certificate(
            subject="evil-ca", cert_type=CertType.CA, public_key=ca_key.public,
            issuer="evil-root", not_before=NOW, not_after=LATER, serial=1,
        ).signed_by(foreign_root_key)
        ca = CaService("evil-ca", ca_key, ca_cert, foreign_root)
        issued = ca.issue_as_certificate("71-100", RsaKeyPair.generate(seed=72).public, NOW)
        with pytest.raises(CertificateError, match="not anchored"):
            verify_chain(issued.chain(), pki["trc"], NOW + 10)

    def test_as_cert_cannot_issue(self, pki):
        as_key = RsaKeyPair.generate(seed=62)
        issued = pki["ca"].issue_as_certificate("71-100", as_key.public, NOW)
        fake_leaf = Certificate(
            subject="71-999", cert_type=CertType.AS,
            public_key=RsaKeyPair.generate(seed=63).public,
            issuer="71-100", not_before=NOW, not_after=LATER, serial=9,
        ).signed_by(as_key)
        chain = (fake_leaf, issued.certificate, pki["root_cert"])
        with pytest.raises(CertificateError, match="may not issue"):
            verify_chain(chain, pki["trc"], NOW + 10)

    def test_issuer_mismatch_detected(self, pki):
        as_key = RsaKeyPair.generate(seed=64)
        issued = pki["ca"].issue_as_certificate("71-100", as_key.public, NOW)
        bad = dataclasses.replace(issued.certificate, issuer="somebody-else")
        with pytest.raises(CertificateError):
            verify_chain((bad, issued.ca_certificate, issued.root_certificate),
                         pki["trc"], NOW + 10)


class TestCaService:
    def test_short_lived_and_renewal(self, pki):
        ca = pki["ca"]
        as_key = RsaKeyPair.generate(seed=80)
        issued = ca.issue_as_certificate("71-200", as_key.public, NOW)
        lifetime = issued.certificate.not_after - issued.certificate.not_before
        assert lifetime == pytest.approx(3 * 24 * 3600)
        # Not yet in the renewal window right after issuance.
        assert not ca.needs_renewal(issued.certificate, NOW + 3600)
        # Inside the final third of the lifetime: renew.
        assert ca.needs_renewal(issued.certificate, NOW + lifetime * 0.8)
        renewed = ca.renew("71-200", NOW + lifetime * 0.8)
        assert renewed.certificate.not_after > issued.certificate.not_after
        assert renewed.certificate.public_key == issued.certificate.public_key
        verify_chain(renewed.chain(), pki["trc"], NOW + lifetime * 0.9)

    def test_renew_unknown_subject_rejected(self, pki):
        with pytest.raises(CertificateError, match="no certificate"):
            pki["ca"].renew("71-404", NOW)

    def test_issuance_counting(self, pki):
        ca = pki["ca"]
        before = ca.issuance_count("71-300")
        ca.issue_as_certificate("71-300", RsaKeyPair.generate(seed=81).public, NOW)
        assert ca.issuance_count("71-300") == before + 1
