"""Property-based SCMP wire-format tests.

The chaos layer can hand the decoder arbitrary bytes, so the wire format
needs stronger guarantees than the fixed cases in ``test_scmp.py``:
encode/decode must round-trip for *every* valid message, every truncation
or padding must raise :class:`ScmpDecodeError`, and nothing that decodes
may re-encode to different bytes (no silent normalization).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scion.scmp import (
    ScmpDecodeError,
    ScmpMessage,
    ScmpType,
    interface_down,
)

messages = st.builds(
    ScmpMessage,
    scmp_type=st.sampled_from(ScmpType),
    code=st.integers(0, 255),
    identifier=st.integers(0, 0xFFFF),
    sequence=st.integers(0, 0xFFFF),
    info=st.integers(0, 2**64 - 1),
    origin_ia=st.text(max_size=40).filter(lambda s: len(s.encode()) <= 255),
)


@settings(max_examples=200, deadline=None)
@given(messages)
def test_encode_decode_round_trip(message):
    assert ScmpMessage.decode(message.encode()) == message


@settings(deadline=None)
@given(messages, st.data())
def test_every_truncation_raises(message, data):
    wire = message.encode()
    cut = data.draw(st.integers(0, len(wire) - 1))
    with pytest.raises(ScmpDecodeError):
        ScmpMessage.decode(wire[:cut])


@settings(deadline=None)
@given(messages, st.binary(min_size=1, max_size=8))
def test_trailing_padding_raises(message, junk):
    with pytest.raises(ScmpDecodeError):
        ScmpMessage.decode(message.encode() + junk)


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=64))
def test_garbage_never_decodes_silently(raw):
    """Whatever decodes must re-encode byte-identically; the rest raises."""
    try:
        decoded = ScmpMessage.decode(raw)
    except ScmpDecodeError:
        return
    assert decoded.encode() == raw


#: Hand-picked corrupted wires: truncations, padding, a lying origin
#: length, an unknown type, and a non-UTF-8 origin. All must be rejected.
GARBAGE_CORPUS = [
    b"",
    b"\x05",
    b"\x05\x00\x00",
    interface_down("71-2:0:3b", 9).encode()[:7],
    interface_down("71-2:0:3b", 9).encode()[:-1],
    interface_down("71-2:0:3b", 9).encode() + b"\x00",
    b"\x80" + b"\x00" * 13 + b"\x05" + b"ab",  # origin_len says 5, 2 present
    b"\xfa" + b"\x00" * 13 + b"\x00",          # unknown SCMP type 250
    b"\x05" + b"\x00" * 13 + b"\x02\xff\xfe",  # origin is not UTF-8
]


@pytest.mark.parametrize("raw", GARBAGE_CORPUS)
def test_corpus_rejected(raw):
    with pytest.raises(ScmpDecodeError):
        ScmpMessage.decode(raw)
