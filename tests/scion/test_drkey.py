"""Tests for the DRKey hierarchy."""

import pytest

from repro.scion.crypto.drkey import (
    DEFAULT_EPOCH_S,
    DrkeyClient,
    DrkeyError,
    DrkeyProvider,
    epoch_at,
)
from repro.scion.crypto.keys import SymmetricKey

MASTER = SymmetricKey(b"m" * 32)


@pytest.fixture()
def provider():
    return DrkeyProvider("71-20965", MASTER)


class TestEpochs:
    def test_epoch_contains_its_times(self):
        epoch = epoch_at(100_000.0)
        assert epoch.contains(100_000.0)
        assert epoch.contains(epoch.not_before)
        assert not epoch.contains(epoch.not_after)

    def test_epoch_boundaries_consecutive(self):
        first = epoch_at(0.0)
        second = epoch_at(DEFAULT_EPOCH_S)
        assert second.index == first.index + 1
        assert second.not_before == first.not_after

    def test_negative_time_rejected(self):
        with pytest.raises(DrkeyError):
            epoch_at(-1.0)


class TestDerivation:
    def test_both_sides_derive_the_same_key(self, provider):
        client = DrkeyClient("71-2:0:3b")
        fetched = client.fetch(provider, t=5_000.0)
        derived = provider.level1_key("71-2:0:3b", t=5_000.0)
        assert fetched.value == derived.value

    def test_host_keys_agree_and_differ_per_host(self, provider):
        client = DrkeyClient("71-2:0:3b")
        client.fetch(provider, t=5_000.0)
        fast = provider.host_key("71-2:0:3b", "10.0.0.7", t=5_000.0)
        slow = client.host_key("71-20965", "10.0.0.7", t=5_000.0)
        assert fast.value == slow.value
        other = provider.host_key("71-2:0:3b", "10.0.0.8", t=5_000.0)
        assert other.value != fast.value

    def test_keys_differ_per_remote_as(self, provider):
        k1 = provider.level1_key("71-2:0:3b", t=0.0)
        k2 = provider.level1_key("71-225", t=0.0)
        assert k1.value != k2.value

    def test_keys_roll_with_the_epoch(self, provider):
        k1 = provider.level1_key("71-2:0:3b", t=0.0)
        k2 = provider.level1_key("71-2:0:3b", t=DEFAULT_EPOCH_S + 1)
        assert k1.value != k2.value

    def test_client_caches_within_epoch(self, provider):
        client = DrkeyClient("71-2:0:3b")
        client.fetch(provider, t=0.0)
        client.fetch(provider, t=100.0)
        assert client.fetches == 1
        client.fetch(provider, t=DEFAULT_EPOCH_S + 5)
        assert client.fetches == 2

    def test_host_key_without_fetch_rejected(self, provider):
        client = DrkeyClient("71-2:0:3b")
        with pytest.raises(DrkeyError, match="fetch first"):
            client.host_key("71-20965", "10.0.0.7", t=0.0)

    def test_secret_values_distinct_per_as(self):
        a = DrkeyProvider("71-1", MASTER)
        b = DrkeyProvider("71-2", MASTER)
        epoch = epoch_at(0.0)
        assert a.secret_value(epoch).value != b.secret_value(epoch).value
