"""Property tests: the memoized MAC path is bitwise-identical to the
uncached one, and the hot-path correctness fixes hold for arbitrary inputs.

These back the kernel perf pass's central claim — every cache is a pure
memo, so seeded experiment digests cannot change — with hypothesis-driven
evidence rather than a handful of examples.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scion.addr import IA
from repro.scion.crypto import mac as mac_mod
from repro.scion.crypto.keys import SymmetricKey
from repro.scion.crypto.mac import (
    MAC_LEN,
    cached_hop_mac,
    chain_beta,
    clear_mac_cache,
    hop_mac,
    set_mac_cache,
    verify_hop_mac,
)
from repro.scion.path import HopField

key_bytes = st.binary(min_size=16, max_size=32)
u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
u16 = st.integers(min_value=0, max_value=(1 << 16) - 1)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_mac_cache()
    set_mac_cache(True)
    yield
    clear_mac_cache()
    set_mac_cache(True)


class TestMemoizedMacAgreesWithUncached:
    @given(raw=key_bytes, ts=u32, exp=u32, ing=u16, eg=u16, beta=u16)
    @settings(max_examples=200, deadline=None)
    def test_cached_equals_uncached(self, raw, ts, exp, ing, eg, beta):
        key = SymmetricKey(raw)
        uncached = hop_mac(key, ts, exp, ing, eg, beta)
        assert cached_hop_mac(key, ts, exp, ing, eg, beta) == uncached
        # Second call is a cache hit; still identical.
        assert cached_hop_mac(key, ts, exp, ing, eg, beta) == uncached

    @given(raw=key_bytes, ts=u32, exp=u32, ing=u16, eg=u16, beta=u16)
    @settings(max_examples=200, deadline=None)
    def test_verify_accepts_genuine_mac_both_modes(
        self, raw, ts, exp, ing, eg, beta
    ):
        key = SymmetricKey(raw)
        genuine = hop_mac(key, ts, exp, ing, eg, beta)
        assert verify_hop_mac(key, ts, exp, ing, eg, beta, genuine)
        set_mac_cache(False)
        assert verify_hop_mac(key, ts, exp, ing, eg, beta, genuine)

    @given(raw=key_bytes, ts=u32, exp=u32, ing=u16, eg=u16, beta=u16,
           position=st.integers(min_value=0, max_value=MAC_LEN - 1))
    @settings(max_examples=100, deadline=None)
    def test_verify_rejects_flipped_byte(
        self, raw, ts, exp, ing, eg, beta, position
    ):
        key = SymmetricKey(raw)
        genuine = bytearray(hop_mac(key, ts, exp, ing, eg, beta))
        genuine[position] ^= 0x01
        assert not verify_hop_mac(key, ts, exp, ing, eg, beta, bytes(genuine))

    @given(raw=key_bytes, ts=u32, exp=u32, ing=u16, eg=u16, beta=u16)
    @settings(max_examples=100, deadline=None)
    def test_hopfield_verify_memo_agrees_with_uncached(
        self, raw, ts, exp, ing, eg, beta
    ):
        key = SymmetricKey(raw)
        hop = HopField.create(IA.parse("71-225"), key, ts, ing, eg, beta,
                              expiry=exp)
        set_mac_cache(False)
        uncached = hop.verify(key, ts)
        set_mac_cache(True)
        assert hop.verify(key, ts) == uncached
        # Memoized second call (hits the per-instance verdict cache).
        assert hop.verify(key, ts) == uncached
        # A different key must not be served the memoized verdict.
        other = SymmetricKey(b"another-key-another-key-another!")
        expected = hop_mac(other, ts, hop.expiry, ing, eg, beta) == hop.mac
        assert hop.verify(other, ts) == expected


class TestVerifyLengthShortCircuit:
    @given(raw=key_bytes, ts=u32, exp=u32, ing=u16, eg=u16, beta=u16,
           length=st.integers(min_value=0, max_value=12))
    @settings(max_examples=100, deadline=None)
    def test_wrong_length_rejected_without_mac_computation(
        self, raw, ts, exp, ing, eg, beta, length
    ):
        if length == MAC_LEN:
            length += 1
        key = SymmetricKey(raw)
        genuine = hop_mac(key, ts, exp, ing, eg, beta)
        candidate = (genuine * 3)[:length]  # right prefix, wrong length
        clear_mac_cache()
        assert not verify_hop_mac(key, ts, exp, ing, eg, beta, candidate)
        # The length check short-circuited: nothing was computed or cached.
        assert mac_mod.mac_cache_info().misses == 0

    def test_out_of_range_inputs_rejected_not_raised(self):
        key = SymmetricKey(b"0123456789abcdef")
        assert not verify_hop_mac(key, 1 << 32, 0, 0, 0, 0, b"\x00" * MAC_LEN)


class TestChainBeta:
    @given(beta=u16, mac=st.binary(min_size=2, max_size=MAC_LEN))
    @settings(max_examples=100, deadline=None)
    def test_chain_beta_stays_16_bit_and_is_involutive(self, beta, mac):
        advanced = chain_beta(beta, mac)
        assert 0 <= advanced <= 0xFFFF
        assert chain_beta(advanced, mac) == beta  # XOR is an involution

    @given(mac=st.binary(min_size=0, max_size=1))
    @settings(max_examples=20, deadline=None)
    def test_too_short_mac_error_names_mac_len(self, mac):
        with pytest.raises(ValueError, match="MAC_LEN"):
            chain_beta(0, mac)
