"""The seeded random topology generator (ROADMAP item 1, first step)."""

import pytest

from repro.scion.network import ScionNetwork
from repro.scion.topology import LinkType, random_topology


def _shape_digest(topo) -> tuple:
    """Structure, not object identity: ASes, core flags, link endpoints."""
    ases = tuple(
        (str(ia), topo.get(ia).is_core) for ia in sorted(topo.ases)
    )
    links = tuple(sorted(
        (str(a_ia), a_if, str(b_ia), b_if)
        for (a_ia, a_if), (b_ia, b_if) in topo.link_attachments.values()
    ))
    return ases, links


class TestRandomTopology:
    def test_deterministic_per_seed(self):
        assert (_shape_digest(random_topology(32, seed=4))
                == _shape_digest(random_topology(32, seed=4)))
        assert (_shape_digest(random_topology(32, seed=4))
                != _shape_digest(random_topology(32, seed=5)))

    def test_size_and_core_count(self):
        topo = random_topology(64, seed=1)
        assert len(topo.ases) == 64
        cores = [ia for ia in topo.ases if topo.get(ia).is_core]
        assert len(cores) == 4  # sqrt(64)//2
        # Full core mesh.
        core_links = [
            name for name, ((a, _), (b, _)) in topo.link_attachments.items()
            if topo.get(a).is_core and topo.get(b).is_core
        ]
        assert len(core_links) == 6

    def test_every_leaf_reaches_every_leaf(self):
        """validate() guarantees structure; this guarantees usable paths."""
        topo = random_topology(24, seed=9)
        network = ScionNetwork(topo, seed=9, verify_beacons=False)
        leaves = sorted(
            (ia for ia in topo.ases if not topo.get(ia).is_core),
            key=str,
        )
        probes = [(leaves[0], leaves[-1]), (leaves[1], leaves[len(leaves) // 2])]
        for src, dst in probes:
            assert network.paths(src, dst), f"no path {src}->{dst}"

    def test_peer_links_present(self):
        topo = random_topology(64, seed=1, peer_fraction=0.2)
        peered = [
            ia for ia in topo.ases
            if any(
                iface.link_type == LinkType.PEER
                for iface in topo.get(ia).interfaces.values()
            )
        ]
        assert peered

    def test_rejects_empty_networks(self):
        from repro.scion.topology import TopologyError

        with pytest.raises(TopologyError):
            random_topology(0)
