"""Beacon fingerprint memoization: cached == recomputed, always.

The fingerprint is the identity key for beacon stores, propagation dedup,
and path-server registries, so the memo must be byte-identical to the
uncached computation for every beacon a real network mints — and a
beacon extended with :meth:`Beacon.with_entry` must get a fresh value,
not its parent's cache.
"""

from repro.netsim.crucible import TOPOLOGIES
from repro.scion.addr import IA
from repro.scion.network import ScionNetwork


def _network():
    return ScionNetwork(
        TOPOLOGIES["mesh5"](0), seed=42, verify_beacons=False
    )


def _all_stored_beacons(network):
    beaconing = network.beaconing
    for store in list(beaconing.core_stores.values()) + list(
        beaconing.down_stores.values()
    ):
        yield from store.all_beacons()


class TestFingerprintMemo:
    def test_seeded_digests_byte_identical_to_uncached(self):
        network = _network()
        checked = 0
        for beacon in _all_stored_beacons(network):
            cached = beacon.interface_fingerprint()
            assert cached == beacon._build_interface_fingerprint()
            # Second call returns the exact cached object.
            assert beacon.interface_fingerprint() is cached
            checked += 1
        assert checked > 0

    def test_extension_does_not_inherit_parent_cache(self):
        network = _network()
        engine = network.beaconing
        beacon = next(iter(_all_stored_beacons(network)))
        parent_fp = beacon.interface_fingerprint()  # warm the cache
        terminal_ia = beacon.terminal_ia
        entry = engine._make_entry(
            terminal_ia, beacon.entries[-1].hop.cons_ingress, 7,
            beacon.next_beta(),
        )
        extended = beacon.with_entry(entry, engine.signing_keys[terminal_ia])
        assert extended.interface_fingerprint() != parent_fp
        assert (extended.interface_fingerprint()
                == extended._build_interface_fingerprint())

    def test_equal_beacons_share_the_fingerprint_value(self):
        """The memo lives per instance; equality still implies equal
        fingerprints (digest depends only on frozen fields)."""
        network = _network()
        for beacon in _all_stored_beacons(network):
            clone = type(beacon)(
                beacon.timestamp, beacon.seg_id, beacon.entries
            )
            assert clone is not beacon
            assert clone.interface_fingerprint() == beacon.interface_fingerprint()
