"""Tests for ISD/AS/IA addressing, including round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.scion.addr import (
    AddrError,
    HostAddr,
    IA,
    MAX_AS,
    MAX_BGP_AS,
    format_as,
    parse_as,
    parse_isd,
)


class TestParseAs:
    def test_decimal(self):
        assert parse_as("559") == 559

    def test_hex_groups(self):
        # 71-2:0:3b from the paper: 0x0002_0000_003b.
        assert parse_as("2:0:3b") == (2 << 32) | 0x3B

    def test_case_insensitive_hex(self):
        assert parse_as("2:0:3B") == parse_as("2:0:3b")

    def test_decimal_too_large_requires_hex_form(self):
        with pytest.raises(AddrError, match="hex form"):
            parse_as(str(MAX_BGP_AS + 1))

    def test_int_passthrough_validates_range(self):
        assert parse_as(MAX_AS) == MAX_AS
        with pytest.raises(AddrError):
            parse_as(MAX_AS + 1)
        with pytest.raises(AddrError):
            parse_as(-1)

    @pytest.mark.parametrize("bad", ["", "x", "1:2", "1:2:3:4", "1::3", "2-3"])
    def test_malformed(self, bad):
        with pytest.raises(AddrError):
            parse_as(bad)


class TestFormatAs:
    def test_bgp_renders_decimal(self):
        assert format_as(559) == "559"

    def test_large_renders_hex(self):
        assert format_as((2 << 32) | 0x3B) == "2:0:3b"

    def test_out_of_range(self):
        with pytest.raises(AddrError):
            format_as(1 << 48)


class TestIA:
    def test_parse_paper_addresses(self):
        # Real addresses from Figure 1 of the paper.
        for text in ("71-2:0:3b", "71-559", "64-2:0:9", "71-20965", "71-225"):
            assert str(IA.parse(text)) == text

    def test_ordering(self):
        assert IA.parse("64-559") < IA.parse("71-1")
        assert IA.parse("71-1") < IA.parse("71-2:0:3b")

    def test_int_round_trip(self):
        ia = IA.parse("71-2:0:3b")
        assert IA.from_int(ia.to_int()) == ia

    def test_isd_out_of_range(self):
        with pytest.raises(AddrError):
            IA(70000, 1)

    def test_malformed_strings(self):
        for bad in ("71", "-1", "71-", "a-1", "71-2:0:3b-x"):
            with pytest.raises(AddrError):
                IA.parse(bad)

    def test_hashable_and_usable_as_dict_key(self):
        d = {IA.parse("71-1"): "one"}
        assert d[IA(71, 1)] == "one"


class TestHostAddr:
    def test_round_trip(self):
        addr = HostAddr(IA.parse("71-225"), "10.0.0.5", 443)
        assert HostAddr.parse(str(addr)) == addr

    def test_invalid_port(self):
        with pytest.raises(AddrError):
            HostAddr(IA.parse("71-225"), "10.0.0.5", 70000)

    def test_empty_host(self):
        with pytest.raises(AddrError):
            HostAddr(IA.parse("71-225"), "", 1)


@given(st.integers(0, MAX_AS))
def test_as_format_parse_round_trip(value):
    assert parse_as(format_as(value)) == value


@given(st.integers(0, 0xFFFF), st.integers(0, MAX_AS))
def test_ia_string_round_trip(isd, asn):
    ia = IA(isd, asn)
    assert IA.parse(str(ia)) == ia


@given(st.integers(0, (1 << 64) - 1))
def test_ia_int_round_trip(value):
    assert IA.from_int(value).to_int() == value
