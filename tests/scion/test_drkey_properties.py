"""Property tests for the DRKey hierarchy's security contract.

Three claims back the LightningFilter's line-rate authentication and the
adversary experiment's wrong-epoch attack:

* **fast == slow**: the provider's on-the-fly derivation and the client's
  fetched-then-derived keys agree bitwise, for any master secret, epoch
  length, and time — including across epoch rolls;
* **host binding**: keys for distinct hosts never collide, so a stolen
  host key authenticates exactly one host;
* **epoch binding**: a tag stamped under one epoch's key *never* verifies
  in a different epoch — wrong-epoch stamping always fails, which is what
  bounds the blast radius of a compromised key without any revocation.
"""

from hypothesis import given, settings, strategies as st

from repro.scion.addr import IA
from repro.scion.crypto.drkey import (
    DEFAULT_EPOCH_S,
    DrkeyClient,
    DrkeyProvider,
    epoch_at,
)
from repro.scion.crypto.keys import SymmetricKey
from repro.sciera.lightningfilter import LightningFilter

master_bytes = st.binary(min_size=16, max_size=32)
epoch_lengths = st.sampled_from([60.0, 3600.0, DEFAULT_EPOCH_S])
times = st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False)
hosts = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)
ias = st.sampled_from(["71-1:0:1", "71-2:0:9", "64-0:0:c0ffee"])


class TestFastSideEqualsSlowSide:
    @given(raw=master_bytes, epoch_s=epoch_lengths, t=times, remote=ias)
    @settings(max_examples=150, deadline=None)
    def test_level1_agrees(self, raw, epoch_s, t, remote):
        provider = DrkeyProvider("71-9:0:a", SymmetricKey(raw), epoch_s)
        client = DrkeyClient(remote, epoch_s)
        assert client.fetch(provider, t) == provider.level1_key(remote, t)

    @given(raw=master_bytes, epoch_s=epoch_lengths, t=times,
           remote=ias, host=hosts)
    @settings(max_examples=150, deadline=None)
    def test_host_keys_agree_across_epochs(
        self, raw, epoch_s, t, remote, host
    ):
        provider = DrkeyProvider("71-9:0:a", SymmetricKey(raw), epoch_s)
        client = DrkeyClient(remote, epoch_s)
        # Fetch in this epoch AND the next: the roll must not desync.
        for when in (t, t + epoch_s):
            client.fetch(provider, when)
            assert (
                client.host_key(provider.local_ia, host, when)
                == provider.host_key(remote, host, when)
            )

    @given(raw=master_bytes, epoch_s=epoch_lengths, t=times, remote=ias)
    @settings(max_examples=100, deadline=None)
    def test_epoch_roll_rotates_the_key(self, raw, epoch_s, t, remote):
        provider = DrkeyProvider("71-9:0:a", SymmetricKey(raw), epoch_s)
        assert (
            provider.level1_key(remote, t)
            != provider.level1_key(remote, t + epoch_s)
        )


class TestHostBinding:
    @given(raw=master_bytes, t=times, remote=ias, h1=hosts, h2=hosts)
    @settings(max_examples=150, deadline=None)
    def test_distinct_hosts_distinct_keys(self, raw, t, remote, h1, h2):
        if h1 == h2:
            return
        provider = DrkeyProvider("71-9:0:a", SymmetricKey(raw))
        assert (
            provider.host_key(remote, h1, t)
            != provider.host_key(remote, h2, t)
        )


class TestWrongEpochAlwaysFails:
    @given(raw=master_bytes, epoch_s=epoch_lengths, t=times,
           remote=ias, payload=st.binary(max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_stale_tag_never_verifies(
        self, raw, epoch_s, t, remote, payload
    ):
        lf = LightningFilter(IA(71, 9), SymmetricKey(raw))
        lf._drkey.epoch_s = epoch_s
        stamped_at = t + epoch_s          # one epoch in the future of t
        tag = lf.compute_auth_tag(remote, payload, stamped_at)
        assert lf.verify(remote, payload, tag, stamped_at)
        assert not lf.verify(remote, payload, tag, t)
        assert not lf.process(remote, payload, tag, t)
        assert lf.stats.rejected_auth == 1
