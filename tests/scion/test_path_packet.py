"""Tests for dataplane paths and the SCION packet wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scion.addr import IA, HostAddr
from repro.scion.crypto.keys import SymmetricKey
from repro.scion.crypto.mac import MAC_LEN
from repro.scion.packet import (
    KIND_SCMP,
    PacketError,
    ScionPacket,
    UnderlayFrame,
)
from repro.scion.path import (
    DataplanePath,
    HopField,
    InfoField,
    PathError,
    PathMeta,
    PathSegmentHops,
    oriented_interfaces,
)

KEY = SymmetricKey(b"k" * 32)
TS = 5000


def hop(ia_text, ingress, egress, beta=1):
    return HopField.create(
        IA.parse(ia_text), KEY, TS, cons_ingress=ingress,
        cons_egress=egress, beta=beta,
    )


def two_segment_path():
    up = PathSegmentHops(
        InfoField(TS, 1, cons_dir=False),
        hops=(hop("71-1", 0, 5), hop("71-100", 3, 0)),
    )
    down = PathSegmentHops(
        InfoField(TS, 2, cons_dir=True),
        hops=(hop("71-1", 0, 7), hop("71-200", 4, 0)),
    )
    return DataplanePath((up, down))


class TestPathStructure:
    def test_forwarding_order_reverses_up_segments(self):
        path = two_segment_path()
        ias = [str(h.ia) for h, _ in path.hops()]
        assert ias == ["71-100", "71-1", "71-1", "71-200"]

    def test_as_sequence_dedups_joint(self):
        path = two_segment_path()
        assert [str(ia) for ia in path.as_sequence()] == ["71-100", "71-1", "71-200"]
        assert path.num_as_hops() == 3

    def test_src_dst(self):
        path = two_segment_path()
        assert str(path.src_ia) == "71-100"
        assert str(path.dst_ia) == "71-200"

    def test_oriented_interfaces(self):
        h = hop("71-1", 3, 5)
        fwd = InfoField(TS, 1, cons_dir=True)
        rev = InfoField(TS, 1, cons_dir=False)
        assert oriented_interfaces(h, fwd) == (3, 5)
        assert oriented_interfaces(h, rev) == (5, 3)

    def test_fingerprint_stable_and_distinct(self):
        p1, p2 = two_segment_path(), two_segment_path()
        assert p1.fingerprint() == p2.fingerprint()
        other = DataplanePath((
            PathSegmentHops(InfoField(TS, 1, False),
                            (hop("71-1", 0, 9), hop("71-100", 3, 0))),
        ))
        assert other.fingerprint() != p1.fingerprint()

    def test_segment_count_limits(self):
        seg = PathSegmentHops(InfoField(TS, 1, True), (hop("71-1", 0, 1),))
        with pytest.raises(PathError):
            DataplanePath(())
        with pytest.raises(PathError):
            DataplanePath((seg,) * 4)

    def test_forwarding_plan_marks_boundaries(self):
        plan = two_segment_path().forwarding_plan()
        assert [r.is_seg_first for r in plan] == [True, False, True, False]
        assert [r.is_seg_last for r in plan] == [False, True, False, True]
        assert [r.seg_index for r in plan] == [0, 0, 1, 1]

    def test_min_expiry(self):
        path = two_segment_path()
        assert path.min_expiry() == TS + 24 * 3600


class TestPathMeta:
    def meta(self, path):
        return PathMeta(path=path, latency_estimate_s=0.05)

    def test_disjointness_identical_paths_is_zero(self):
        m = self.meta(two_segment_path())
        assert m.disjointness(m) == pytest.approx(0.0)

    def test_disjointness_fully_distinct_is_one(self):
        m1 = self.meta(two_segment_path())
        other = DataplanePath((
            PathSegmentHops(InfoField(TS, 3, True),
                            (hop("71-9", 0, 8), hop("71-300", 2, 0))),
        ))
        assert m1.disjointness(self.meta(other)) == pytest.approx(1.0)

    def test_shared_interfaces(self):
        m = self.meta(two_segment_path())
        assert m.shared_interfaces([m]) == len(m.interfaces)
        assert m.shared_interfaces([]) == 0


class TestPacketWireFormat:
    def make_packet(self, **kwargs):
        defaults = dict(
            src=HostAddr(IA.parse("71-100"), "10.0.0.1", 4001),
            dst=HostAddr(IA.parse("71-200"), "10.0.0.2", 4002),
            path=two_segment_path(),
            payload=b"hello sciera",
        )
        defaults.update(kwargs)
        return ScionPacket(**defaults)

    def test_encode_decode_round_trip(self):
        packet = self.make_packet()
        decoded = ScionPacket.decode(packet.encode())
        assert decoded.src == packet.src
        assert decoded.dst == packet.dst
        assert decoded.payload == packet.payload
        assert decoded.path.fingerprint() == packet.path.fingerprint()
        assert decoded.curr_hop == packet.curr_hop

    def test_round_trip_preserves_kind_and_pointer(self):
        packet = self.make_packet(kind=KIND_SCMP, curr_hop=2)
        decoded = ScionPacket.decode(packet.encode())
        assert decoded.kind == KIND_SCMP
        assert decoded.curr_hop == 2

    def test_truncated_packet_rejected(self):
        raw = self.make_packet().encode()
        with pytest.raises(PacketError):
            ScionPacket.decode(raw[: len(raw) // 2])

    def test_garbage_rejected(self):
        with pytest.raises(PacketError):
            ScionPacket.decode(b"\xff" * 40)

    def test_reversed_packet_swaps_endpoints_and_flips_segments(self):
        packet = self.make_packet()
        reply = packet.reversed()
        assert reply.src == packet.dst
        assert reply.dst == packet.src
        assert reply.curr_hop == 0
        # The reply visits the ASes in reverse order.
        fwd = [str(ia) for ia in packet.path.as_sequence()]
        rev = [str(ia) for ia in reply.path.as_sequence()]
        assert rev == list(reversed(fwd))

    def test_double_reverse_is_identity_on_route(self):
        packet = self.make_packet()
        twice = packet.reversed().reversed()
        assert twice.path.fingerprint() == packet.path.fingerprint()

    def test_underlay_frame_size(self):
        frame = UnderlayFrame("10.0.0.1", "10.0.0.2", 40000,
                              UnderlayFrame.DISPATCHER_PORT, b"x" * 100)
        assert frame.size_bytes() == 128


@given(
    payload=st.binary(max_size=200),
    curr_hop=st.integers(0, 3),
    src_port=st.integers(0, 65535),
)
@settings(max_examples=50, deadline=None)
def test_packet_round_trip_property(payload, curr_hop, src_port):
    packet = ScionPacket(
        src=HostAddr(IA.parse("71-100"), "192.168.1.10", src_port),
        dst=HostAddr(IA.parse("64-559"), "10.1.2.3", 443),
        path=two_segment_path(),
        payload=payload,
        curr_hop=curr_hop,
    )
    decoded = ScionPacket.decode(packet.encode())
    assert decoded == packet
