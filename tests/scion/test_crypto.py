"""Tests for the crypto substrate: RSA, symmetric keys, hop MACs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scion.crypto.keys import SymmetricKey, derive_forwarding_key
from repro.scion.crypto.mac import (
    MAC_LEN,
    chain_beta,
    hop_mac,
    verify_hop_mac,
)
from repro.scion.crypto.rsa import RsaKeyPair, sign, verify


@pytest.fixture(scope="module")
def keypair():
    return RsaKeyPair.generate(seed=11)


class TestRsa:
    def test_sign_verify_round_trip(self, keypair):
        message = b"path segment payload"
        signature = sign(keypair, message)
        assert verify(keypair.public, message, signature)

    def test_tampered_message_rejected(self, keypair):
        signature = sign(keypair, b"original")
        assert not verify(keypair.public, b"tampered", signature)

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(seed=12)
        signature = sign(keypair, b"message")
        assert not verify(other.public, b"message", signature)

    def test_garbage_signature_rejected(self, keypair):
        assert not verify(keypair.public, b"message", 12345)
        assert not verify(keypair.public, b"message", 0)
        assert not verify(keypair.public, b"message", keypair.n + 5)

    def test_deterministic_keygen(self):
        a = RsaKeyPair.generate(seed=99)
        b = RsaKeyPair.generate(seed=99)
        assert (a.n, a.e, a.d) == (b.n, b.e, b.d)
        c = RsaKeyPair.generate(seed=100)
        assert c.n != a.n

    def test_modulus_size(self):
        key = RsaKeyPair.generate(bits=512, seed=1)
        assert 500 <= key.n.bit_length() <= 512

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            RsaKeyPair.generate(bits=64)

    def test_fingerprint_stable_and_distinct(self, keypair):
        other = RsaKeyPair.generate(seed=13)
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other.public.fingerprint()

    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_arbitrary_messages(self, message):
        key = RsaKeyPair.generate(seed=7)
        assert verify(key.public, message, sign(key, message))


class TestSymmetricKeys:
    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SymmetricKey(b"short")

    def test_derive_forwarding_key_distinct_per_as(self):
        master = b"m" * 32
        k1 = derive_forwarding_key(master, "71-1")
        k2 = derive_forwarding_key(master, "71-2")
        assert k1.value != k2.value
        assert k1.value == derive_forwarding_key(master, "71-1").value

    def test_short_master_rejected(self):
        with pytest.raises(ValueError):
            derive_forwarding_key(b"x", "71-1")

    def test_labelled_derivation(self):
        key = SymmetricKey(b"k" * 32)
        assert key.derive("hopfield").value != key.derive("drkey").value


class TestHopMac:
    def setup_method(self):
        self.key = SymmetricKey(b"k" * 32)

    def test_mac_length(self):
        mac = hop_mac(self.key, 1000, 2000, 1, 2, 7)
        assert len(mac) == MAC_LEN

    def test_verify_accepts_valid(self):
        mac = hop_mac(self.key, 1000, 2000, 1, 2, 7)
        assert verify_hop_mac(self.key, 1000, 2000, 1, 2, 7, mac)

    @pytest.mark.parametrize(
        "field,value",
        [("timestamp", 1001), ("expiry", 2001), ("ingress", 3),
         ("egress", 3), ("beta", 8)],
    )
    def test_any_field_change_invalidates(self, field, value):
        args = dict(timestamp=1000, expiry=2000, ingress=1, egress=2, beta=7)
        mac = hop_mac(self.key, *args.values())
        args[field] = value
        assert not verify_hop_mac(self.key, *args.values(), mac)

    def test_wrong_key_rejected(self):
        other = SymmetricKey(b"x" * 32)
        mac = hop_mac(self.key, 1000, 2000, 1, 2, 7)
        assert not verify_hop_mac(other, 1000, 2000, 1, 2, 7, mac)

    def test_out_of_range_inputs_rejected(self):
        with pytest.raises(ValueError):
            hop_mac(self.key, -1, 2000, 1, 2, 7)
        with pytest.raises(ValueError):
            hop_mac(self.key, 1000, 2000, 1 << 16, 2, 7)
        # verify never raises on bad input — it just fails.
        assert not verify_hop_mac(self.key, -1, 2000, 1, 2, 7, b"\x00" * MAC_LEN)

    def test_chain_beta_changes_and_stays_16bit(self):
        mac = hop_mac(self.key, 1000, 2000, 1, 2, 7)
        beta2 = chain_beta(7, mac)
        assert 0 <= beta2 < 1 << 16
        with pytest.raises(ValueError):
            chain_beta(7, b"\x01")

    @given(
        ts=st.integers(0, 2**32 - 1), exp=st.integers(0, 2**32 - 1),
        ig=st.integers(0, 2**16 - 1), eg=st.integers(0, 2**16 - 1),
        beta=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_mac_round_trip_property(self, ts, exp, ig, eg, beta):
        key = SymmetricKey(b"p" * 32)
        mac = hop_mac(key, ts, exp, ig, eg, beta)
        assert verify_hop_mac(key, ts, exp, ig, eg, beta, mac)
