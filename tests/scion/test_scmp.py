"""Tests for SCMP messages."""

import pytest

from repro.scion.scmp import (
    ScmpMessage,
    ScmpType,
    echo_reply,
    echo_request,
    interface_down,
)


def test_echo_round_trip():
    request = echo_request(identifier=7, sequence=42)
    decoded = ScmpMessage.decode(request.encode())
    assert decoded == request


def test_echo_reply_mirrors_identifier_and_sequence():
    request = echo_request(identifier=7, sequence=42)
    reply = echo_reply(request)
    assert reply.scmp_type is ScmpType.ECHO_REPLY
    assert (reply.identifier, reply.sequence) == (7, 42)


def test_echo_reply_requires_request():
    reply = echo_reply(echo_request(1, 1))
    with pytest.raises(ValueError):
        echo_reply(reply)


def test_interface_down_carries_origin_and_ifid():
    msg = interface_down("71-2:0:3b", 5)
    decoded = ScmpMessage.decode(msg.encode())
    assert decoded.origin_ia == "71-2:0:3b"
    assert decoded.info == 5
    assert decoded.scmp_type is ScmpType.EXTERNAL_INTERFACE_DOWN
