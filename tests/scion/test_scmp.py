"""Tests for SCMP messages."""

import pytest

from repro.scion.scmp import (
    ScmpDecodeError,
    ScmpMessage,
    ScmpType,
    echo_reply,
    echo_request,
    interface_down,
)


def test_echo_round_trip():
    request = echo_request(identifier=7, sequence=42)
    decoded = ScmpMessage.decode(request.encode())
    assert decoded == request


def test_echo_reply_mirrors_identifier_and_sequence():
    request = echo_request(identifier=7, sequence=42)
    reply = echo_reply(request)
    assert reply.scmp_type is ScmpType.ECHO_REPLY
    assert (reply.identifier, reply.sequence) == (7, 42)


def test_echo_reply_requires_request():
    reply = echo_reply(echo_request(1, 1))
    with pytest.raises(ValueError):
        echo_reply(reply)


def test_interface_down_carries_origin_and_ifid():
    msg = interface_down("71-2:0:3b", 5)
    decoded = ScmpMessage.decode(msg.encode())
    assert decoded.origin_ia == "71-2:0:3b"
    assert decoded.info == 5
    assert decoded.scmp_type is ScmpType.EXTERNAL_INTERFACE_DOWN


class TestDecodeRejectsGarbage:
    """A corrupted wire must never decode into a valid-looking message —
    a truncated origin_ia would attribute an interface-down error to the
    wrong AS."""

    def test_empty_and_short_header(self):
        for raw in (b"", b"\x80", interface_down("71-1", 2).encode()[:5]):
            with pytest.raises(ScmpDecodeError, match="truncated"):
                ScmpMessage.decode(raw)

    def test_origin_truncated(self):
        wire = interface_down("71-2:0:3b", 5).encode()
        with pytest.raises(ScmpDecodeError, match="origin truncated"):
            ScmpMessage.decode(wire[:-1])

    def test_trailing_padding_rejected(self):
        wire = interface_down("71-2:0:3b", 5).encode()
        with pytest.raises(ScmpDecodeError, match="truncated or padded"):
            ScmpMessage.decode(wire + b"\x00")

    def test_invalid_utf8_origin(self):
        good = interface_down("ab", 5).encode()
        bad = good[:-2] + b"\xff\xfe"
        with pytest.raises(ScmpDecodeError, match="UTF-8"):
            ScmpMessage.decode(bad)

    def test_unknown_type(self):
        wire = bytearray(echo_request(1, 1).encode())
        wire[0] = 250  # not an ScmpType value
        with pytest.raises(ScmpDecodeError, match="unknown SCMP type"):
            ScmpMessage.decode(bytes(wire))

    def test_decode_error_is_value_error(self):
        # Callers that predate the chaos layer catch ValueError.
        assert issubclass(ScmpDecodeError, ValueError)
