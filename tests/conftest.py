"""Shared fixtures: small synthetic SCION topologies used across tests."""

import pytest

from repro.scion.addr import IA
from repro.scion.network import ScionNetwork
from repro.scion.topology import GlobalTopology, LinkType


def make_diamond_topology() -> GlobalTopology:
    """Two cores (doubly linked), two leaves, multi-homed leaf A.

        C1 ==== C2        (two parallel core links)
        /  \\   |
       A    '--A(2nd parent link)   B->C2
    """
    topo = GlobalTopology()
    c1, c2 = IA.parse("71-1"), IA.parse("71-2")
    a, b = IA.parse("71-100"), IA.parse("71-200")
    topo.add_as(c1, is_core=True, name="core1")
    topo.add_as(c2, is_core=True, name="core2")
    topo.add_as(a, name="leafA")
    topo.add_as(b, name="leafB")
    topo.add_link(c1, c2, LinkType.CORE, 0.010, link_name="c1c2-a")
    topo.add_link(c1, c2, LinkType.CORE, 0.020, link_name="c1c2-b")
    topo.add_link(a, c1, LinkType.PARENT, 0.005, link_name="a-c1")
    topo.add_link(a, c2, LinkType.PARENT, 0.006, link_name="a-c2")
    topo.add_link(b, c2, LinkType.PARENT, 0.004, link_name="b-c2")
    return topo


def make_peering_topology() -> GlobalTopology:
    """Two cores, two leaves under different cores, with a peer link
    between the leaves' parents (non-core middle ASes).

        C1 ---- C2
        |        |
        M1 ~~~~ M2     (peering)
        |        |
        A        B
    """
    topo = GlobalTopology()
    c1, c2 = IA.parse("71-1"), IA.parse("71-2")
    m1, m2 = IA.parse("71-10"), IA.parse("71-20")
    a, b = IA.parse("71-100"), IA.parse("71-200")
    topo.add_as(c1, is_core=True)
    topo.add_as(c2, is_core=True)
    for ia in (m1, m2, a, b):
        topo.add_as(ia)
    topo.add_link(c1, c2, LinkType.CORE, 0.050, link_name="c1c2")
    topo.add_link(m1, c1, LinkType.PARENT, 0.005, link_name="m1-c1")
    topo.add_link(m2, c2, LinkType.PARENT, 0.005, link_name="m2-c2")
    topo.add_link(m1, m2, LinkType.PEER, 0.002, link_name="m1~m2")
    topo.add_link(a, m1, LinkType.PARENT, 0.001, link_name="a-m1")
    topo.add_link(b, m2, LinkType.PARENT, 0.001, link_name="b-m2")
    return topo


def make_shortcut_topology() -> GlobalTopology:
    """One core, a middle AS with two children: shortcut at the middle.

        C
        |
        M
       / \\
      A   B
    """
    topo = GlobalTopology()
    c, m = IA.parse("71-1"), IA.parse("71-10")
    a, b = IA.parse("71-100"), IA.parse("71-200")
    topo.add_as(c, is_core=True)
    for ia in (m, a, b):
        topo.add_as(ia)
    topo.add_link(m, c, LinkType.PARENT, 0.010, link_name="m-c")
    topo.add_link(a, m, LinkType.PARENT, 0.001, link_name="a-m")
    topo.add_link(b, m, LinkType.PARENT, 0.001, link_name="b-m")
    return topo


@pytest.fixture(scope="session")
def diamond_network() -> ScionNetwork:
    return ScionNetwork(make_diamond_topology(), seed=7)


@pytest.fixture(scope="session")
def peering_network() -> ScionNetwork:
    return ScionNetwork(make_peering_topology(), seed=7)


@pytest.fixture(scope="session")
def shortcut_network() -> ScionNetwork:
    return ScionNetwork(make_shortcut_topology(), seed=7)


@pytest.fixture()
def fresh_diamond_network() -> ScionNetwork:
    """A non-shared diamond network for tests that mutate link state."""
    return ScionNetwork(make_diamond_topology(), seed=7)
