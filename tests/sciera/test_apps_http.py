"""Unit tests for the mini-HTTP substrate and the ported applications."""

import pytest

from repro.endhost.pan import HostRegistry, PanContext, ScionHost
from repro.endhost.daemon import Daemon
from repro.scion.addr import HostAddr, IA
from repro.scion.network import ScionNetwork
from repro.sciera.apps import (
    AppError,
    Bat,
    MiniHttpServer,
    ReverseProxy,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    enablement_report,
)
from tests.conftest import make_diamond_topology

A = IA.parse("71-100")
B = IA.parse("71-200")


@pytest.fixture(scope="module")
def web_world():
    network = ScionNetwork(make_diamond_topology(), seed=9)
    registry = HostRegistry()
    host_a = ScionHost(network, A, "10.1.0.1", registry, daemon=Daemon(network, A))
    host_b = ScionHost(network, B, "10.2.0.1", registry, daemon=Daemon(network, B))
    return network, host_a, host_b


class TestHttpCodec:
    def test_request_round_trip(self):
        raw = encode_request("GET", "/data", {"Accept": "text/plain"})
        method, path, headers = decode_request(raw)
        assert (method, path) == ("GET", "/data")
        assert headers["Accept"] == "text/plain"

    def test_response_round_trip(self):
        raw = encode_response(200, b"body", {"Server": "mini/1.0"})
        response = decode_response(raw)
        assert response.status == 200
        assert response.body == b"body"
        assert response.headers["Server"] == "mini/1.0"
        assert response.ok

    def test_malformed_request_rejected(self):
        with pytest.raises(AppError):
            decode_request(b"NONSENSE")

    def test_malformed_response_rejected(self):
        with pytest.raises(AppError):
            decode_response(b"NOT-HTTP\r\n\r\n")

    def test_error_status_not_ok(self):
        assert not decode_response(encode_response(404, b"", {})).ok


class TestBatUrlParsing:
    def test_scion_url(self):
        addr = Bat._parse_url("scion://71-200,10.2.0.1:80/index")
        assert addr == HostAddr(B, "10.2.0.1", 80)
        assert Bat._path_of("scion://71-200,10.2.0.1:80/index") == "/index"

    def test_missing_path_defaults_to_root(self):
        assert Bat._path_of("scion://71-200,10.2.0.1:80") == "/"

    def test_non_scion_url_rejected(self):
        with pytest.raises(AppError, match="not a SCION URL"):
            Bat._parse_url("https://example.com/")

    def test_bad_authority_rejected(self):
        with pytest.raises(AppError, match="bad SCION authority"):
            Bat._parse_url("scion://banana/")


class TestAppsEndToEnd:
    def test_404_for_unknown_route(self, web_world):
        _, host_a, host_b = web_world
        server = MiniHttpServer(PanContext(host_b), port=8001)
        server.route("/known", lambda headers: b"yes")
        bat = Bat(PanContext(host_a))
        response = bat.get(f"scion://{B},{host_b.ip}:8001/unknown")
        assert response.status == 404
        server.socket.close()

    def test_proxy_marks_non_scion_local_traffic(self, web_world):
        network, host_a, host_b = web_world
        backend = MiniHttpServer(PanContext(host_b), port=8002)
        backend.route("/x", lambda headers: b"ok")
        proxy = ReverseProxy(PanContext(host_b), backend)
        # A request from a host in the SAME AS travels intra-AS: no SCION
        # path is involved, and the plugin marks it X-SCION: off.
        registry = host_b.registry
        local = ScionHost(network, B, "10.2.0.99", registry,
                          daemon=host_b.daemon)
        sock = PanContext(local).open_socket()
        from repro.sciera.apps import encode_request as enc

        result = sock.send_to(
            HostAddr(B, host_b.ip, 443), enc("GET", "/x", {})
        )
        assert result.success
        assert backend.requests_seen[-1][1].get("X-SCION") == "off"
        proxy.plugin.socket.close()
        backend.socket.close()

    def test_enablement_report_all_small(self):
        for entry in enablement_report():
            assert entry.lines_of_code < 20, entry.application


class TestExperimentsCommon:
    def test_reset_world_drops_caches(self):
        from repro.experiments import common

        first = common.get_world()
        assert common.get_world() is first
        common.reset_world()
        second = common.get_world()
        assert second is not first
        # Leave a fresh world cached for any later test in the session.
