"""Tests for the SCIERA topology data and the IP baseline."""

import pytest

from repro.scion.addr import IA
from repro.scion.topology import LinkType
from repro.sciera.topology_data import (
    FIG8_ASES,
    MEASUREMENT_VANTAGE_POINTS,
    SCIERA_LINKS,
    SCIERA_PARTICIPANTS,
    SCIERA_POPS,
    build_ip_internet,
    build_sciera_topology,
    link_latency_s,
    participant,
)


class TestParticipants:
    def test_all_figure1_ases_present(self):
        ias = {p.ia for p in SCIERA_PARTICIPANTS}
        # Spot-check the ASes named in the paper's text and figures.
        for expected in (
            "71-20965", "71-559", "71-1140", "71-2546", "71-2:0:42",
            "71-2:0:49", "71-203311", "71-225", "71-88", "71-2:0:48",
            "71-398900", "71-2:0:35", "71-2:0:3b", "71-2:0:3c", "71-2:0:3d",
            "71-2:0:3e", "71-2:0:3f", "71-2:0:40", "71-2:0:18", "71-2:0:61",
            "71-2:0:4d", "71-4158", "71-50999", "71-1916", "71-2:0:5c",
            "71-37288", "64-559", "64-2:0:9",
        ):
            assert expected in ias, expected

    def test_isd_structure(self):
        """All ASes in ISD 71 except the two Swiss ISD 64 ASes."""
        isd64 = [p for p in SCIERA_PARTICIPANTS if p.ia.startswith("64-")]
        assert len(isd64) == 2
        assert all(p.ia.startswith("71-") for p in SCIERA_PARTICIPANTS
                   if p not in isd64)

    def test_core_ases_match_paper(self):
        cores = {p.ia for p in SCIERA_PARTICIPANTS if p.is_core}
        # GEANT, BRIDGES, the six KISTI PoPs, and the ISD 64 core.
        assert cores == {
            "71-20965", "71-2:0:35", "71-2:0:3b", "71-2:0:3c", "71-2:0:3d",
            "71-2:0:3e", "71-2:0:3f", "71-2:0:40", "64-559",
        }

    def test_five_continents(self):
        regions = {p.region for p in SCIERA_PARTICIPANTS if not p.planned}
        assert {"EU", "NA", "ASIA", "SA", "AF"} <= regions

    def test_ufpr_is_planned_only(self):
        assert participant("71-10881").planned
        topo = build_sciera_topology()
        assert IA.parse("71-10881") not in topo.ases
        with_planned = build_sciera_topology(include_planned=True)
        assert IA.parse("71-10881") in with_planned.ases

    def test_heterogeneous_flavors(self):
        """Section 4.5: both implementations must be present."""
        flavors = {p.flavor for p in SCIERA_PARTICIPANTS}
        assert flavors == {"open-source", "anapaya"}

    def test_unknown_participant_raises(self):
        with pytest.raises(KeyError):
            participant("99-999")


class TestTopologyConstruction:
    def test_topology_validates(self):
        build_sciera_topology().validate()

    def test_kreonet_ring_closed(self):
        """The ring: AMS - CHG - STL - DJ - HK - SG - AMS."""
        names = {link.name for link in SCIERA_LINKS}
        for leg in ("kreonet-ams-chg", "kreonet-chg-stl", "kreonet-stl-dj",
                    "kreonet-dj-hk", "kreonet-hk-sg", "kreonet-sg-ams"):
            assert leg in names, leg

    def test_four_sg_ams_options(self):
        """KREONET + CAE-1 + KAUST I & II = four SG-AMS circuits."""
        sg_ams = [
            link for link in SCIERA_LINKS
            if {link.a, link.b} == {"71-2:0:3d", "71-2:0:3e"}
        ]
        assert len(sg_ams) == 4

    def test_wacren_has_two_vlans(self):
        wacren = [l for l in SCIERA_LINKS if l.a == "71-37288"]
        assert len(wacren) == 2

    def test_ufms_two_last_mile_links(self):
        ufms = [l for l in SCIERA_LINKS if l.a == "71-2:0:5c"]
        assert len(ufms) == 2
        assert all(l.b == "71-1916" for l in ufms)

    def test_latencies_physical(self):
        """Every link's latency is plausible for its distance."""
        for link in SCIERA_LINKS:
            latency = link_latency_s(link)
            assert 0.0001 < latency < 0.2, link.name

    def test_transpacific_longer_than_metro(self):
        by_name = {l.name: l for l in SCIERA_LINKS}
        assert (
            link_latency_s(by_name["kreonet-stl-dj"])
            > 10 * link_latency_s(by_name["eth-switch"])
        )


class TestMeasurementSets:
    def test_eleven_vantage_points(self):
        assert len(MEASUREMENT_VANTAGE_POINTS) == 11

    def test_vantage_regional_split(self):
        """5 EU, 2 Asia, 3 NA, 1 SA (paper Section 5.4)."""
        regions = [participant(ia).region for ia in MEASUREMENT_VANTAGE_POINTS]
        assert regions.count("EU") == 5
        assert regions.count("ASIA") == 2
        assert regions.count("NA") == 3
        assert regions.count("SA") == 1

    def test_fig8_nine_ases(self):
        assert len(FIG8_ASES) == 9
        for ia in FIG8_ASES:
            assert participant(ia) is not None

    def test_table1_sixteen_pops(self):
        assert len(SCIERA_POPS) == 16


class TestIpBaseline:
    def test_all_participants_routable(self):
        net = build_ip_internet()
        actives = [p.ia for p in SCIERA_PARTICIPANTS if not p.planned]
        for src in actives[:6]:
            for dst in actives:
                if src != dst:
                    assert net.rtt_s(src, dst) is not None, (src, dst)

    def test_single_path_semantics(self):
        net = build_ip_internet()
        r1 = net.route("71-225", "71-2:0:5c")
        r2 = net.route("71-225", "71-2:0:5c")
        assert r1.hops == r2.hops

    def test_pair_inflation_applied_and_deterministic(self):
        net1, net2 = build_ip_internet(), build_ip_internet()
        assert net1.rtt_s("71-225", "71-2:0:5c") == net2.rtt_s("71-225", "71-2:0:5c")

    def test_intercontinental_rtt_plausible(self):
        net = build_ip_internet()
        # Charlottesville -> Campo Grande: about 100-250 ms RTT.
        rtt = net.rtt_s("71-225", "71-2:0:5c")
        assert 0.08 < rtt < 0.40
        # Zurich pair: a few ms.
        assert net.rtt_s("64-559", "64-2:0:9") < 0.02
