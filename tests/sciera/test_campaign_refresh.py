"""The campaign refresh engine: link-indexed invalidation vs full rescan.

The engine contract is strict: both refresh modes (and the threaded
analysis sweep) must produce record-for-record identical datasets, because
each pair's selection depends only on its own analyses and current link
state.  The incremental mode just avoids re-deriving pairs whose paths
never cross a flipped link.
"""

import pytest

from repro.netsim.failures import FailureSchedule, LinkEvent
from repro.scion.addr import IA
from repro.sciera.build import build_sciera
from repro.sciera.multiping import CampaignStats, DAY_S, MultipingCampaign
from repro.sciera.topology_data import FIG8_ASES


@pytest.fixture(scope="module")
def world():
    return build_sciera(seed=11)


def _reset_links(world):
    for link in world.network.topology.links.values():
        link.set_up(True)


def _run(world, **kwargs):
    _reset_links(world)
    dataset = MultipingCampaign(world, **kwargs).run()
    _reset_links(world)
    return dataset


def _pair_links(world, src, dst):
    """Names of every link the pair's analyzed paths traverse."""
    network = world.network
    used = set()
    for meta in network.paths(IA.parse(src), IA.parse(dst)):
        analysis = network.dataplane.analyze(meta.path, network.timestamp)
        for link in analysis.links:
            used.add(link.name)
    return used


class TestEquivalence:
    def test_incremental_matches_full_rescan_on_default_schedule(self, world):
        """Acceptance: byte-identical datasets, >= 3x less refresh work."""
        config = dict(duration_s=20 * DAY_S, interval_s=4 * 3600.0, seed=3)
        incremental = _run(world, refresh_mode="incremental", **config)
        full = _run(world, refresh_mode="full", **config)
        assert incremental.records == full.records
        assert incremental.events == full.events
        assert incremental.stats.refresh_events == full.stats.refresh_events
        assert full.stats.pairs_refreshed >= 3 * incremental.stats.pairs_refreshed
        # The incremental run never falls back to all-pairs rounds after
        # the initial sweep; the full run pays one per dirty interval.
        assert incremental.stats.full_refreshes == 1
        assert full.stats.full_refreshes > 1
        assert full.stats.incremental_refreshes == 0

    def test_threaded_sweep_matches_serial(self, world):
        config = dict(
            duration_s=4 * DAY_S, interval_s=6 * 3600.0,
            sources=FIG8_ASES[:4], destinations=FIG8_ASES[:4], seed=5,
        )
        serial = _run(world, workers=0, **config)
        threaded = _run(world, workers=4, **config)
        assert serial.records == threaded.records
        assert serial.stats.as_dict() == threaded.stats.as_dict()


class TestLinkIndex:
    def test_event_on_unused_link_refreshes_nothing(self, world):
        src, dst = "71-225", "71-2:0:5c"
        used = _pair_links(world, src, dst)
        unused = sorted(set(world.network.topology.links) - used)
        assert unused, "expected at least one link the pair never uses"
        schedule = FailureSchedule()
        schedule.add_event(LinkEvent(DAY_S, unused[0], up=False, reason="test"))
        schedule.add_event(
            LinkEvent(1.5 * DAY_S, unused[0], up=True, reason="test")
        )
        dataset = _run(
            world, duration_s=2 * DAY_S, interval_s=12 * 3600.0,
            sources=(src,), destinations=(dst,), schedule=schedule, seed=5,
        )
        assert dataset.stats.refresh_events == 2
        assert dataset.stats.incremental_refreshes == 0
        assert dataset.stats.pairs_refreshed == 1  # the initial sweep only
        assert dataset.stats.analyses_run == 1

    def test_event_on_used_link_refreshes_the_pair(self, world):
        src, dst = "71-225", "71-2:0:5c"
        used = sorted(_pair_links(world, src, dst))
        assert used
        schedule = FailureSchedule()
        schedule.add_event(LinkEvent(DAY_S, used[0], up=False, reason="test"))
        schedule.add_event(
            LinkEvent(1.5 * DAY_S, used[0], up=True, reason="test")
        )
        dataset = _run(
            world, duration_s=2 * DAY_S, interval_s=12 * 3600.0,
            sources=(src,), destinations=(dst,), schedule=schedule, seed=5,
        )
        assert dataset.stats.refresh_events == 2
        assert dataset.stats.incremental_refreshes >= 1
        assert dataset.stats.pairs_refreshed >= 2  # initial sweep + refresh


class TestConfiguration:
    def test_invalid_refresh_mode_rejected(self, world):
        with pytest.raises(ValueError, match="refresh_mode"):
            MultipingCampaign(world, refresh_mode="lazy")

    def test_negative_workers_rejected(self, world):
        with pytest.raises(ValueError, match="workers"):
            MultipingCampaign(world, workers=-1)

    def test_stats_describe_and_dict(self):
        stats = CampaignStats(
            analyses_run=10, refresh_events=4, pairs_refreshed=7,
            full_refreshes=1, incremental_refreshes=3,
        )
        assert stats.as_dict()["pairs_refreshed"] == 7
        assert "7 pair refreshes" in stats.describe()
        assert "4 link events" in stats.describe()
