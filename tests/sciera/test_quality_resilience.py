"""Tests for Figures 10a/10b/10c machinery and the Science-DMZ pieces."""

import pytest

from repro.scion.addr import IA
from repro.scion.crypto.keys import SymmetricKey
from repro.sciera.build import build_sciera
from repro.sciera.hercules import HerculesError, HerculesTransfer, datapath_ablation
from repro.sciera.lightningfilter import LightningFilter
from repro.sciera.paths_quality import (
    fig10a_latency_inflation,
    fig10b_path_disjointness,
)
from repro.sciera.resilience import fig10c_link_failure_sim
from repro.sciera.topology_data import FIG8_ASES


@pytest.fixture(scope="module")
def world():
    return build_sciera(seed=21)


class TestFig10a:
    def test_inflation_at_least_one(self, world):
        result = fig10a_latency_inflation(world, FIG8_ASES)
        assert all(v >= 1.0 for v in result.pair_inflation.values())

    def test_most_pairs_have_close_alternative(self, world):
        result = fig10a_latency_inflation(world, FIG8_ASES)
        assert result.frac_below_1_2 > 0.5

    def test_cdf_monotone(self, world):
        result = fig10a_latency_inflation(world, FIG8_ASES)
        xs, ys = result.cdf()
        assert list(xs) == sorted(xs)
        assert ys[-1] == pytest.approx(1.0)


class TestFig10b:
    def test_disjointness_in_unit_interval(self, world):
        result = fig10b_path_disjointness(world, FIG8_ASES[:5])
        assert all(0.0 <= v <= 1.0 for v in result.disjointness)

    def test_some_fully_disjoint_combinations(self, world):
        result = fig10b_path_disjointness(world, FIG8_ASES)
        assert result.frac_fully_disjoint > 0.1
        assert result.combinations > 100


class TestFig10c:
    def test_boundary_conditions(self, world):
        result = fig10c_link_failure_sim(world.network.topology, runs=5)
        # Nothing removed: full connectivity both ways.
        assert result.multipath_connectivity[0] == pytest.approx(1.0)
        assert result.singlepath_connectivity[0] == pytest.approx(1.0)
        # Everything removed: nothing connected.
        assert result.multipath_connectivity[-1] == pytest.approx(0.0)
        assert result.singlepath_connectivity[-1] == pytest.approx(0.0)

    def test_multipath_dominates_singlepath(self, world):
        result = fig10c_link_failure_sim(world.network.topology, runs=10)
        for multi, single in zip(
            result.multipath_connectivity, result.singlepath_connectivity
        ):
            assert multi >= single - 1e-9

    def test_gap_is_substantial_at_20pct(self, world):
        result = fig10c_link_failure_sim(world.network.topology, runs=20)
        assert result.multipath_at(0.2) - result.singlepath_at(0.2) > 0.10

    def test_connectivity_decreases_monotonically_on_average(self, world):
        result = fig10c_link_failure_sim(world.network.topology, runs=10)
        series = result.multipath_connectivity
        # Allow tiny numeric wiggle, but the trend must be downward.
        assert series[0] > series[len(series) // 2] > series[-1]

    def test_invalid_runs_rejected(self, world):
        with pytest.raises(ValueError):
            fig10c_link_failure_sim(world.network.topology, runs=0)


class TestLightningFilter:
    def make_filter(self, **kw):
        return LightningFilter(
            IA.parse("71-2:0:3b"), SymmetricKey(b"f" * 32), **kw
        )

    def test_authenticated_packet_accepted(self):
        lf = self.make_filter()
        tag = lf.compute_auth_tag("71-20965", b"payload")
        assert lf.process("71-20965", b"payload", tag, now_s=0.0)
        assert lf.stats.accepted == 1

    def test_forged_tag_rejected(self):
        lf = self.make_filter()
        assert not lf.process("71-20965", b"payload", b"\x00" * 16, now_s=0.0)
        assert lf.stats.rejected_auth == 1

    def test_tag_bound_to_source_as(self):
        lf = self.make_filter()
        tag = lf.compute_auth_tag("71-20965", b"payload")
        assert not lf.process("71-225", b"payload", tag, now_s=0.0)

    def test_rate_limiting(self):
        lf = self.make_filter(rate_limit_pps=10.0, burst=5.0)
        tag = lf.compute_auth_tag("71-20965", b"x")
        accepted = sum(
            lf.process("71-20965", b"x", tag, now_s=0.0) for _ in range(20)
        )
        assert accepted == 5  # burst exhausted, no time has passed
        assert lf.stats.rejected_rate == 15
        # Tokens refill with time.
        assert lf.process("71-20965", b"x", tag, now_s=1.0)

    def test_line_rate_claim(self):
        """The paper's 100 Gbps line-rate claim at MTU-sized packets."""
        lf = self.make_filter(cores=8)
        assert lf.saturates_100g(packet_bytes=1500)
        assert not LightningFilter(
            IA.parse("71-1"), SymmetricKey(b"f" * 32), cores=1
        ).saturates_100g()


class TestHercules:
    def test_transfer_uses_multiple_paths(self, world):
        transfer = HerculesTransfer(
            world.network, IA.parse("71-2:0:3b"), IA.parse("71-20965")
        )
        report = transfer.run(size_bytes=10 * 1024**3)
        assert report.paths_used >= 2
        assert report.goodput_bps > 0
        assert report.duration_s > 0
        assert sum(a.bytes_assigned for a in report.allocations) <= report.size_bytes

    def test_disjoint_paths_aggregate_bandwidth(self, world):
        transfer = HerculesTransfer(
            world.network, IA.parse("71-2:0:3d"), IA.parse("71-2:0:3e"),
        )
        single = transfer.run(size_bytes=1024**3, max_paths=1)
        multi = transfer.run(size_bytes=1024**3, max_paths=4)
        # SG-AMS has four parallel circuits: multipath must beat one path.
        assert multi.goodput_bps > single.goodput_bps

    def test_dispatcher_is_the_bottleneck(self, world):
        reports = datapath_ablation(
            world.network, IA.parse("71-2:0:3b"), IA.parse("71-20965"),
            size_bytes=1024**3,
        )
        assert reports["dispatcher"].endhost_limited
        assert (
            reports["xdp-bypass"].goodput_bps
            > 2 * reports["dispatcher"].goodput_bps
        )
        assert (
            reports["dispatcherless"].goodput_bps
            > reports["dispatcher"].goodput_bps
        )
        assert (
            reports["xdp-bypass"].goodput_bps
            >= reports["dispatcherless"].goodput_bps
        )

    def test_invalid_size_rejected(self, world):
        transfer = HerculesTransfer(
            world.network, IA.parse("71-2:0:3b"), IA.parse("71-20965")
        )
        with pytest.raises(HerculesError):
            transfer.run(size_bytes=0)
