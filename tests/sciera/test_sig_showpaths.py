"""Tests for the SCION-IP Gateway and the showpaths tool."""

import pytest

from repro.scion.addr import IA
from repro.sciera.build import build_sciera
from repro.sciera.showpaths import format_report, showpaths
from repro.sciera.sig import (
    LegacyIpPacket,
    ScionIpGateway,
    SigError,
    SigFabric,
)


@pytest.fixture(scope="module")
def world():
    return build_sciera(seed=41)


@pytest.fixture()
def fabric(world):
    fabric = SigFabric()
    eth = ScionIpGateway(
        world.network, IA.parse("64-2:0:9"),
        prefixes=["192.168.10.0/24"], name="sig-eth",
    )
    ufms = ScionIpGateway(
        world.network, IA.parse("71-2:0:5c"),
        prefixes=["192.168.20.0/24"], name="sig-ufms",
    )
    fabric.attach(eth)
    fabric.attach(ufms)
    return fabric, eth, ufms


class TestSig:
    def test_transparent_ip_to_ip_delivery(self, fabric):
        _, eth, ufms = fabric
        packet = LegacyIpPacket("192.168.10.5", "192.168.20.7", b"legacy data")
        delivery = eth.forward(packet)
        assert delivery.success
        assert delivery.egress_sig == "sig-ufms"
        assert delivery.via is not None
        assert delivery.latency_s > 0.05  # intercontinental
        assert eth.stats.encapsulated == 1
        assert ufms.stats.decapsulated == 1

    def test_local_prefix_stays_local(self, fabric):
        _, eth, _ = fabric
        delivery = eth.forward(
            LegacyIpPacket("192.168.10.5", "192.168.10.9", b"x")
        )
        assert delivery.success
        assert delivery.via is None
        assert eth.stats.encapsulated == 0

    def test_unannounced_destination_dropped(self, fabric):
        _, eth, _ = fabric
        delivery = eth.forward(LegacyIpPacket("192.168.10.5", "8.8.8.8", b"x"))
        assert not delivery.success
        assert delivery.failure == "no-sig-announces-destination"
        assert eth.stats.no_route == 1

    def test_failover_over_scion(self, fabric, world):
        _, eth, ufms = fabric
        packet = LegacyIpPacket("192.168.10.5", "192.168.20.7", b"x")
        first = eth.forward(packet)
        # Cut the link the preferred path used; traffic must still flow.
        assert first.via is not None
        cut = None
        for hop_ifid in first.via.interfaces:
            ia_text, ifid = hop_ifid.split("#")
            iface = world.network.topology.get(IA.parse(ia_text)).interfaces[int(ifid)]
            if "ufms" in iface.link_name:
                cut = iface.link_name
                break
        assert cut is not None
        world.network.set_link_state(cut, False)
        try:
            second = eth.forward(packet)
            assert second.success
            assert second.via.fingerprint != first.via.fingerprint
        finally:
            world.network.set_link_state(cut, True)

    def test_overlapping_prefixes_rejected(self, world):
        fabric = SigFabric()
        fabric.attach(ScionIpGateway(
            world.network, IA.parse("71-225"), ["10.5.0.0/16"], name="a",
        ))
        with pytest.raises(SigError, match="overlaps"):
            fabric.attach(ScionIpGateway(
                world.network, IA.parse("71-88"), ["10.5.5.0/24"], name="b",
            ))

    def test_longest_prefix_match(self, world):
        fabric = SigFabric()
        coarse = ScionIpGateway(
            world.network, IA.parse("71-225"), ["10.0.0.0/8"], name="coarse",
        )
        fine = ScionIpGateway(
            world.network, IA.parse("71-88"), ["172.16.1.0/24"], name="fine",
        )
        fabric.attach(coarse)
        fabric.attach(fine)
        assert fabric.lookup("10.1.2.3") is coarse
        assert fabric.lookup("172.16.1.9") is fine
        assert fabric.lookup("203.0.113.1") is None

    def test_detached_gateway_rejected(self, world):
        sig = ScionIpGateway(world.network, IA.parse("71-225"), ["10.0.0.0/8"])
        with pytest.raises(SigError, match="fabric"):
            sig.forward(LegacyIpPacket("10.0.0.1", "10.0.0.2", b"x"))

    def test_empty_prefixes_rejected(self, world):
        with pytest.raises(SigError):
            ScionIpGateway(world.network, IA.parse("71-225"), [])


class TestShowpaths:
    def test_lists_all_paths_with_status(self, world):
        entries = showpaths(
            world.network, IA.parse("71-2:0:42"), IA.parse("71-1916")
        )
        assert entries
        assert all(e.status == "alive" for e in entries)
        assert all(e.latency_ms and e.latency_ms > 0 for e in entries)
        assert len({e.fingerprint for e in entries}) == len(entries)

    def test_timeout_status_on_dead_path(self, world):
        world.network.set_link_state("wacren-geant-1", False)
        world.network.set_link_state("wacren-geant-2", False)
        try:
            entries = showpaths(
                world.network, IA.parse("71-20965"), IA.parse("71-37288")
            )
            assert entries
            assert all(e.status == "timeout" for e in entries)
        finally:
            world.network.set_link_state("wacren-geant-1", True)
            world.network.set_link_state("wacren-geant-2", True)

    def test_hops_format(self, world):
        entries = showpaths(
            world.network, IA.parse("71-2:0:42"), IA.parse("71-20965"),
            probe=False,
        )
        first = entries[0]
        assert first.hops.startswith("71-2:0:42 ")
        assert ">" in first.hops
        assert first.hops.endswith("71-20965")
        assert first.status == "unprobed"

    def test_report_format(self, world):
        entries = showpaths(
            world.network, IA.parse("71-559"), IA.parse("71-1140")
        )
        report = format_report(entries)
        assert f"Available paths: {len(entries)}" in report
        assert "status=alive" in report
