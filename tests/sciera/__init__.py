"""Test package."""
