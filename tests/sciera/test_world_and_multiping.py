"""Integration tests: the built SCIERA world and the multiping campaign."""

import pytest

from repro.scion.addr import IA
from repro.sciera.build import build_sciera
from repro.sciera.multiping import (
    DAY_S,
    MultipingCampaign,
    sciera_campaign_schedule,
)
from repro.sciera.analysis import (
    fig5_latency_cdf,
    fig6_ratio_cdf,
    fig7_ratio_over_time,
    fig8_max_active_paths,
    fig9_median_deviation,
)
from repro.sciera.topology_data import FIG8_ASES


@pytest.fixture(scope="module")
def world():
    return build_sciera(seed=11)


@pytest.fixture(scope="module")
def short_campaign(world):
    """A 2-day slice of the campaign (covers no scheduled outages)."""
    dataset = MultipingCampaign(
        world, duration_s=2 * DAY_S, interval_s=4 * 3600, seed=5
    ).run()
    for link in world.network.topology.links.values():
        link.set_up(True)
    return dataset


class TestWorldBuild:
    def test_every_pair_of_participants_has_paths(self, world):
        net = world.network
        ases = sorted(net.topology.ases)
        missing = [
            (src, dst)
            for src in ases for dst in ases
            if src != dst and not net.paths(src, dst)
        ]
        assert missing == []

    def test_cross_isd_connectivity(self, world):
        """ISD 71 hosts reach the Swiss production ISD natively."""
        paths = world.network.paths(IA.parse("71-2:0:42"), IA.parse("64-2:0:9"))
        assert paths
        assert world.network.probe(paths[0]).success

    def test_bootstrap_server_per_participant(self, world):
        assert set(world.bootstrap_servers) == set(world.hosts)
        result = world.bootstrapper_for("71-225").bootstrap()
        assert str(result.topology.ia) == "71-225"

    def test_hosts_can_talk(self, world):
        from repro.endhost.pan import PanContext
        from repro.scion.addr import HostAddr

        server_host = world.host("71-50999")   # KAUST
        client_host = world.host("71-2:0:4d")  # Korea University
        server = PanContext(server_host).open_socket(5001)
        server.on_message(lambda p, s, pm: b"ack")
        client = PanContext(client_host).open_socket()
        result = client.send_to(
            HostAddr(server_host.ia, server_host.ip, 5001), b"data"
        )
        assert result.success
        assert result.reply == b"ack"
        server.close()
        client.close()


class TestCampaign:
    def test_record_counts(self, short_campaign):
        # 12 intervals x sources x (destinations - 1 self for vantage dsts)
        assert len(short_campaign.records) > 1000
        assert short_campaign.pair_count > 200

    def test_scion_rtts_sane(self, short_campaign):
        for r in short_campaign.records[:2000]:
            if r.scion_rtt_s is not None:
                assert 0.0001 < r.scion_rtt_s < 1.5

    def test_stall_exclusion_filters_some_records(self, short_campaign):
        valid = short_campaign.valid_records()
        assert 0 < len(valid) < len(short_campaign.records)

    def test_stalls_only_from_stall_sources(self, short_campaign):
        stall_sources = set(MultipingCampaign.DEFAULT_STALL_SOURCES)
        for r in short_campaign.records:
            if not r.icmp_valid:
                assert r.src in stall_sources

    def test_active_never_exceeds_known(self, short_campaign):
        for r in short_campaign.records:
            assert 0 <= r.active_paths <= r.known_paths

    def test_fig5_statistics(self, short_campaign):
        result = fig5_latency_cdf(short_campaign)
        assert result.scion_median_ms > 0
        assert result.ip_median_ms > 0
        # SCION must improve the tail (the paper's key Figure 5 finding).
        assert result.p90_reduction_pct > 5.0

    def test_fig6_shape(self, short_campaign):
        result = fig6_ratio_cdf(short_campaign)
        # A minority-to-half of pairs faster over SCION; most under 1.25.
        assert 0.2 < result.frac_below_1 < 0.6
        assert result.frac_below_1_25 > 0.7
        assert result.max_ratio > 2.0  # outliers exist

    def test_fig7_series(self, short_campaign):
        result = fig7_ratio_over_time(short_campaign)
        assert len(result.ratio_series) >= 3
        assert all(0.5 < v < 1.5 for v in result.ratio_series)

    def test_invalid_config_rejected(self, world):
        with pytest.raises(ValueError):
            MultipingCampaign(world, duration_s=0)
        with pytest.raises(ValueError):
            MultipingCampaign(world, interval_s=-5)


class TestCampaignEvents:
    def test_schedule_has_the_paper_events(self):
        schedule = sciera_campaign_schedule(20 * DAY_S)
        reasons = {e.reason for e in schedule.events}
        assert any("jan21" in r for r in reasons)
        assert any("korea-sg-cable" in r for r in reasons)
        assert any("bridges-instability" in r for r in reasons)
        assert any("feb6" in r for r in reasons)
        assert any("jan25-new-links" in r for r in reasons)

    def test_short_schedule_clamps(self):
        schedule = sciera_campaign_schedule(1 * DAY_S)
        for event in schedule.events:
            assert event.time_s <= 1 * DAY_S

    def test_cable_cut_reduces_dj_sg_paths(self, world):
        """The Figure 9 mechanism in isolation."""
        net = world.network
        dj, sg = IA.parse("71-2:0:3b"), IA.parse("71-2:0:3d")
        nominal = len(net.active_paths(dj, sg))
        for leg in ("kreonet-dj-hk", "kreonet-dj-hk-2", "kreonet-dj-hk-3",
                    "kreonet-dj-hk-4", "kreonet-hk-sg", "kreonet-hk-sg-2",
                    "kreonet-hk-sg-3", "kreonet-hk-sg-4"):
            net.set_link_state(leg, False)
        degraded = len(net.active_paths(dj, sg))
        for leg in ("kreonet-dj-hk", "kreonet-dj-hk-2", "kreonet-dj-hk-3",
                    "kreonet-dj-hk-4", "kreonet-hk-sg", "kreonet-hk-sg-2",
                    "kreonet-hk-sg-3", "kreonet-hk-sg-4"):
            net.set_link_state(leg, True)
        # Communication continues (westward around the globe) but with
        # far fewer path options — the paper's submarine-cable story.
        assert degraded >= 1
        assert nominal - degraded >= 10
