"""Legacy setup shim: the environment has no `wheel` package, so pip's
PEP 517 editable path (which builds a wheel) fails. With setup.py present
pip falls back to `setup.py develop`, which works offline."""

from setuptools import setup

setup()
